"""Unified observability: tracing, metrics, and explain-analyze.

The paper's entire evaluation (Figures 7-11) is an observability
exercise; this package is where each of those measurements now lives,
per query instead of per benchmark run:

==========  ==============================================================
Figure 7    total transferred bytes — ``RunStats.total_transferred_bytes``;
            per peer: the ``wire_message_bytes_total`` /
            ``wire_document_bytes_total`` counters; per operator: the
            ``bytes`` attribute on ``rpc`` / ``ship`` spans and the
            ``actual_bytes`` column of ``plan.explain(analyze=True)``.
Figure 8    the five-component time breakdown — ``RunStats.times``;
            per span: the ``shred`` / ``local_exec`` / ``serialize`` /
            ``remote_exec`` / ``network`` *component leaf spans*, whose
            ``sim_s`` sum reproduces the run totals exactly
            (``Span.component_totals()``).
Figure 9    execution time per strategy — the ``query`` root span's
            wall duration, the ``query_latency_seconds`` histogram,
            and the estimated-vs-actual totals in the analyzed plan.
Figure 10   projection precision — the ``used_paths`` / ``returned``
            attributes on by-projection ``rpc`` spans (request sizes
            carry the pruned fragment bytes).
Figure 11   projection/serialisation overhead — the ``serialize``
            component leaves under each ``rpc`` / ``ship`` span, plus
            the ``index_build_seconds_total`` counters for the
            structural/value index work that replaced re-shredding.
==========  ==============================================================

The paper's figures are steady-state aggregates; the *continuous*
layer reads the same measurements over time:

==============  ==========================================================
over time       Figure 7/9's bytes and latency as rolling windows —
                ``FleetMonitor.latency`` p50/p95/p99 per window
                (:class:`RollingWindow` + :class:`QuantileSketch`),
                ``RegistryWindows.rate("wire_message_bytes_total",
                peer)`` for windowed wire throughput per peer.
per peer        Figure 8's "who is slow" as live health — windowed
                mean/p95 latency and error rate per replica
                (:class:`HealthTracker`), scored against the fleet
                baseline and fed back into replica selection.
as objectives   Figure 9's latency target as an :class:`SLO` with
                multi-window burn-rate alerting (:class:`SLOMonitor`).
as events       the churn behind the numbers — failovers, epoch bumps,
                cache invalidations, shard skips, calibration bumps —
                in the typed :class:`EventLog` (JSONL export, instant
                markers on Chrome traces).
as profiles     Figure 8 folded across many queries: collapsed-stack
                flamegraph output, sim- and wall-weighted
                (:class:`Profiler`).
==============  ==========================================================

Modules:

* :mod:`repro.obs.trace` — :class:`Tracer` / :class:`Span`: per-query
  span trees with contextvar nesting and simulated-time charge leaves;
* :mod:`repro.obs.metrics` — :class:`MetricsRegistry` with
  :class:`Counter` / :class:`Gauge` / :class:`Histogram` labeled
  series (and the canonical :func:`percentile`);
* :mod:`repro.obs.export` — JSON and Chrome trace-event exporters
  (:func:`dump_trace`, :func:`dump_chrome_trace`) plus the schema
  validator CI runs over captured traces;
* :mod:`repro.obs.explain` — per-operator estimated-vs-actual
  accounting behind ``RunStats.plan.explain(analyze=True)``;
* :mod:`repro.obs.windows` — rolling time-window aggregation with a
  bounded-error quantile sketch;
* :mod:`repro.obs.events` — the typed fleet event log;
* :mod:`repro.obs.slo` — declarative SLOs with burn-rate alerting;
* :mod:`repro.obs.health` — per-peer health scoring (the failure
  detector the router's replica selection consults);
* :mod:`repro.obs.profile` — the collapsed-stack sampling profiler;
* :mod:`repro.obs.fleet` — :class:`FleetMonitor`, the one-call wiring
  of all of the above into a federation;
* :mod:`repro.obs.console` — :func:`render_fleet`, the snapshot text
  console.
"""

from repro.obs.console import render_fleet
from repro.obs.events import Event, EventLog
from repro.obs.explain import (ActualsBook, OpActual, OpAnalysis,
                               PlanAnalysis, render_analysis)
from repro.obs.export import (chrome_trace_events, dump_chrome_trace,
                              dump_trace, render_tree, span_to_dict,
                              validate_chrome_trace)
from repro.obs.fleet import FleetMonitor
from repro.obs.health import HealthTracker, PeerHealth
from repro.obs.metrics import (GLOBAL_REGISTRY, Counter, Gauge, Histogram,
                               MetricsRegistry, global_registry, percentile)
from repro.obs.profile import Profiler, collapse_spans
from repro.obs.slo import SLO, AlertState, BurnRatePolicy, SLOMonitor
from repro.obs.trace import (COMPONENTS, NOOP_TRACER, NoopTracer, Span,
                             Tracer, bind_stats_span, child_span,
                             current_span)
from repro.obs.windows import (QuantileSketch, RegistryWindows,
                               RollingWindow, RollingWindowFamily)

__all__ = [
    "ActualsBook", "OpActual", "OpAnalysis", "PlanAnalysis",
    "render_analysis",
    "chrome_trace_events", "dump_chrome_trace", "dump_trace",
    "render_tree", "span_to_dict", "validate_chrome_trace",
    "GLOBAL_REGISTRY", "Counter", "Gauge", "Histogram",
    "MetricsRegistry", "global_registry", "percentile",
    "COMPONENTS", "NOOP_TRACER", "NoopTracer", "Span", "Tracer",
    "bind_stats_span", "child_span", "current_span",
    "Event", "EventLog",
    "QuantileSketch", "RegistryWindows", "RollingWindow",
    "RollingWindowFamily",
    "SLO", "AlertState", "BurnRatePolicy", "SLOMonitor",
    "HealthTracker", "PeerHealth",
    "Profiler", "collapse_spans",
    "FleetMonitor", "render_fleet",
]
