"""Declarative SLOs evaluated by multi-window burn-rate rules.

An :class:`SLO` states an objective over the query stream — "99% of
queries finish under 50 ms" (``kind="latency"``) or "99.5% of queries
succeed without failover" (``kind="errors"``). The error budget is
``1 - target``; the **burn rate** is how fast the fleet is spending it:
``bad_fraction / budget``. Burn rate 1 spends exactly the budget; burn
rate 10 exhausts a day's budget in 2.4 hours.

:class:`BurnRatePolicy` is the standard multi-window rule: alert only
when *both* a long window and a short window exceed the burn-rate
threshold. The long window keeps one slow query from paging; the short
window makes the alert stop arming the moment the breach ends, so a
recovered fleet does not re-alert on stale history. Hysteresis — the
alert resolves only when the long-window burn falls under
``threshold * resolve_ratio`` — guarantees the fire/resolve pair
cannot flap around the threshold: one sustained breach produces
exactly one ``alert_fired`` event.

:class:`SLOMonitor` owns one rolling window per objective (bucket
width = short window; ring span = long window), classifies each
recorded query good/bad, and emits ``alert_fired`` / ``alert_resolved``
events on transitions.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field

from repro.obs.events import EventLog
from repro.obs.windows import RollingWindow

__all__ = ["SLO", "BurnRatePolicy", "AlertState", "SLOMonitor"]


@dataclass(frozen=True)
class SLO:
    """One objective over the query stream.

    ``kind="latency"``: a query is *bad* when ``wall_s > threshold_s``.
    ``kind="errors"``: a query is *bad* when it failed (or failed over,
    if the caller counts failovers as bad). ``target`` is the good
    fraction the objective promises (0.99 = 1% error budget).
    """

    name: str
    kind: str = "latency"                  # "latency" | "errors"
    target: float = 0.99
    threshold_s: float = 0.050             # latency SLOs only

    def __post_init__(self):
        if self.kind not in ("latency", "errors"):
            raise ValueError(f"SLO kind {self.kind!r} unknown")
        if not 0.0 < self.target < 1.0:
            raise ValueError(f"SLO target {self.target} out of (0, 1)")

    @property
    def budget(self) -> float:
        return 1.0 - self.target


@dataclass(frozen=True)
class BurnRatePolicy:
    """Multi-window burn-rate rule with hysteresis.

    Fire when burn rate >= ``threshold`` over *both* the ``long_s`` and
    ``short_s`` windows and the long window holds at least
    ``min_requests`` samples; resolve when the long-window burn falls
    under ``threshold * resolve_ratio``.
    """

    long_s: float = 60.0
    short_s: float = 5.0
    threshold: float = 10.0
    resolve_ratio: float = 0.5
    min_requests: int = 10

    def __post_init__(self):
        if self.short_s <= 0 or self.long_s < self.short_s:
            raise ValueError(
                f"windows long_s={self.long_s} short_s={self.short_s} "
                "must satisfy 0 < short_s <= long_s")
        if not 0.0 < self.resolve_ratio <= 1.0:
            raise ValueError(
                f"resolve_ratio {self.resolve_ratio} out of (0, 1]")


@dataclass
class AlertState:
    """Mutable alert state for one objective."""

    slo: SLO
    policy: BurnRatePolicy
    window: RollingWindow
    firing: bool = False
    fired_total: int = 0
    fired_at: float | None = None
    last_burn_long: float = 0.0
    last_burn_short: float = 0.0

    def snapshot(self) -> dict:
        return {
            "slo": self.slo.name,
            "kind": self.slo.kind,
            "target": self.slo.target,
            "firing": self.firing,
            "fired_total": self.fired_total,
            "burn_long": self.last_burn_long,
            "burn_short": self.last_burn_short,
        }


class SLOMonitor:
    """Evaluates SLO burn-rate rules over the live query stream.

    One good/bad rolling window per objective: bucket width is the
    policy's short window, the ring spans the long window, so a single
    window serves both horizons. ``record(wall_s, ok)`` classifies the
    query against every objective and evaluates transitions inline —
    no background thread.
    """

    def __init__(self, events: EventLog | None = None,
                 clock=time.monotonic):
        self.events = events
        self.clock = clock
        self._states: list[AlertState] = []

    def add(self, slo: SLO,
            policy: BurnRatePolicy | None = None) -> AlertState:
        policy = policy if policy is not None else BurnRatePolicy()
        buckets = max(1, math.ceil(policy.long_s / policy.short_s))
        window = RollingWindow(width_s=policy.short_s, buckets=buckets,
                               clock=self.clock, eps=None)
        state = AlertState(slo=slo, policy=policy, window=window)
        self._states.append(state)
        return state

    # -- ingest ---------------------------------------------------------------

    def record(self, wall_s: float, ok: bool = True) -> None:
        """Classify one finished query against every objective, then
        evaluate transitions."""
        for state in self._states:
            if state.slo.kind == "latency":
                bad = not ok or wall_s > state.slo.threshold_s
            else:
                bad = not ok
            state.window.observe(1.0 if bad else 0.0)
        self.evaluate()

    # -- evaluation -----------------------------------------------------------

    def _burn(self, state: AlertState, window_s: float) -> tuple[float, int]:
        count = state.window.count(window_s)
        if count == 0:
            return 0.0, 0
        bad = state.window.sum(window_s)
        return (bad / count) / state.slo.budget, count

    def evaluate(self) -> None:
        """Re-check every rule; emit events on fire/resolve edges."""
        for state in self._states:
            policy = state.policy
            burn_long, count_long = self._burn(state, policy.long_s)
            burn_short, _ = self._burn(state, policy.short_s)
            state.last_burn_long = burn_long
            state.last_burn_short = burn_short
            if not state.firing:
                if (count_long >= policy.min_requests
                        and burn_long >= policy.threshold
                        and burn_short >= policy.threshold):
                    state.firing = True
                    state.fired_total += 1
                    state.fired_at = self.clock()
                    if self.events is not None:
                        self.events.emit(
                            "alert_fired",
                            f"SLO {state.slo.name}: burn rate "
                            f"{burn_long:.1f}x over {policy.long_s:g}s "
                            f"(threshold {policy.threshold:g}x)",
                            severity="error", slo=state.slo.name,
                            burn_long=burn_long, burn_short=burn_short)
            elif burn_long <= policy.threshold * policy.resolve_ratio:
                state.firing = False
                state.fired_at = None
                if self.events is not None:
                    self.events.emit(
                        "alert_resolved",
                        f"SLO {state.slo.name}: burn rate back to "
                        f"{burn_long:.1f}x",
                        severity="info", slo=state.slo.name,
                        burn_long=burn_long)

    # -- reads ----------------------------------------------------------------

    def states(self) -> list[AlertState]:
        return list(self._states)

    def active(self) -> list[AlertState]:
        return [state for state in self._states if state.firing]

    def snapshot(self) -> list[dict]:
        return [state.snapshot() for state in self._states]
