"""The fleet console: a snapshot text rendering of the continuous view.

:func:`render_fleet` turns a :class:`~repro.obs.fleet.FleetMonitor`
into the operator's one-screen answer to "is the fleet healthy right
now": windowed query percentiles, per-peer health scores and states,
active SLO alerts, and the newest events. The output is deterministic
given the monitor's state (peers sorted by name, events by sequence),
so examples and CI artifacts diff cleanly.

The renderer duck-types the monitor (it only reads the public
surfaces), keeping this module import-free of the system layer::

    == fleet @ 12.4s up | 240 queries/30.0s | 8.0 qps | errors 0.0% ==
    latency     : p50 1.21 ms | p95 3.40 ms | p99 5.62 ms
    peers:
      peer    state     score  reqs  err%    mean      p95
      node1   OK        1.00     40   0.0   1.20 ms   2.00 ms
      node2   DEGRADED  0.31     38   0.0   9.70 ms  12.00 ms
    alerts:
      FIRING latency-p99: burn 14.2x long / 20.1x short
    events (last 5 of 37):
      #32 [warning] health_demoted  peer node2: score 0.31 ...
"""

from __future__ import annotations

__all__ = ["render_fleet"]


def _ms(seconds: float) -> str:
    return f"{seconds * 1000:.2f} ms"


def render_fleet(monitor, window_s: float | None = None,
                 recent_events: int = 8) -> str:
    """One text screen of fleet state from a
    :class:`~repro.obs.fleet.FleetMonitor` (or anything exposing the
    same surfaces). ``window_s`` restricts the windowed numbers to the
    most recent seconds (default: the monitor's whole ring)."""
    lines: list[str] = []

    queries = monitor.latency.snapshot(window_s)
    covered = monitor.latency.covered_s(window_s)
    error_rate = monitor.error_rate(window_s)
    lines.append(
        f"== fleet @ {monitor.uptime_s():.1f}s up | "
        f"{queries['count']} queries/{covered:.1f}s | "
        f"{queries['rate']:.1f} qps | errors {error_rate:.1%} ==")
    lines.append(
        f"latency     : p50 {_ms(queries['p50'])} | "
        f"p95 {_ms(queries['p95'])} | p99 {_ms(queries['p99'])}")

    peers = sorted(monitor.health.snapshot(), key=lambda p: p["peer"])
    if peers:
        lines.append("peers:")
        width = max(len(p["peer"]) for p in peers)
        width = max(width, len("peer"))
        lines.append(f"  {'peer':<{width}}  state     score  reqs"
                     f"   err%      mean       p95")
        for peer in peers:
            state = "OK" if peer["healthy"] else "DEGRADED"
            lines.append(
                f"  {peer['peer']:<{width}}  {state:<8}  "
                f"{peer['score']:.2f}   {peer['samples']:>4}  "
                f"{peer['error_rate'] * 100:>5.1f}  "
                f"{_ms(peer['mean_latency_s']):>9}  "
                f"{_ms(peer['p95_latency_s']):>9}")

    catalog = getattr(getattr(monitor, "federation", None),
                      "catalog", None)
    if catalog is not None:
        lines.extend(_topology_lines(catalog))

    states = monitor.slo.states()
    if states:
        lines.append("alerts:")
        for state in states:
            status = "FIRING" if state.firing else "ok"
            lines.append(
                f"  {status:<6} {state.slo.name}: burn "
                f"{state.last_burn_long:.1f}x long / "
                f"{state.last_burn_short:.1f}x short "
                f"(fired {state.fired_total}x)")

    total_events = sum(monitor.events.counts().values())
    newest = monitor.events.recent(recent_events)
    if newest:
        lines.append(f"events (last {len(newest)} of {total_events}):")
        for event in newest:
            lines.append(f"  #{event.seq} [{event.severity}] "
                         f"{event.kind}  {event.message}")

    return "\n".join(lines)


def _topology_lines(catalog) -> list[str]:
    """The catalog's shard map, one line per shard: placements, live
    replica counts against the collection target, and the reason of
    the last epoch bump — the operator's view of a migration as it
    cuts over."""
    snap = catalog.describe()
    lines = [f"topology    : epoch {snap['epoch']}"
             + (f" | down {','.join(snap['down'])}" if snap["down"]
                else "")
             + (f" | draining {','.join(snap['draining'])}"
                if snap.get("draining") else "")]
    for name, coll in sorted(snap["collections"].items()):
        target = coll.get("target_replication", 0)
        lines.append(
            f"  {name} [{coll['partitioning']}] rf={target} "
            f"last={coll.get('last_reason', '?')}")
        for shard in coll["shards"]:
            live = shard.get("live_count", len(shard["replicas"]))
            flag = "" if live >= target else "  UNDER-REPLICATED"
            lines.append(
                f"    s{shard['index']} {shard['local_name']} "
                f"({shard['members']} members) -> "
                f"{','.join(shard['replicas'])} "
                f"live {live}/{target}{flag}")
    return lines
