"""Per-peer health scoring from windowed stats: the failure *detector*.

``Transport.kill_peer`` makes a peer loudly dead — requests raise and
the router fails over. The harder operational case is the *degrading*
replica: still answering, but slower every second (GC thrash, noisy
neighbour, saturated link). Nothing raises, so failover counts stay
flat while tail latency climbs. This module is the precursor to
ROADMAP item 5's failure detector: it watches per-peer rolling windows
and produces a health score the :class:`~repro.cluster.router.ClusterRouter`
consults in ``replica_order``, so selection de-prefers a degrading
replica *before* it ever fails a request.

Score model, per peer over the window:

``score = (1 - error_rate) * latency_factor``

where ``latency_factor`` is 1.0 while the peer's windowed mean latency
stays within ``latency_tolerance``× the fleet baseline, and decays as
``tolerance * baseline / mean`` beyond it. The baseline is the *lower
median* of all peers' windowed means — a robust centre that an
outlier cannot drag upward, so one degraded peer in a two-peer fleet
still scores against the healthy peer's latency.

Demotion has hysteresis: a peer is demoted when its score falls below
``demote_below`` and restored only after recovering past the higher
``restore_above``, so scores oscillating around one threshold cannot
flap the routing order. Both transitions emit events.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.obs.events import EventLog
from repro.obs.windows import RollingWindowFamily

__all__ = ["PeerHealth", "HealthTracker"]


@dataclass
class PeerHealth:
    """One peer's current standing."""

    peer: str
    score: float = 1.0
    healthy: bool = True
    samples: int = 0
    error_rate: float = 0.0
    mean_latency_s: float = 0.0
    p95_latency_s: float = 0.0

    def snapshot(self) -> dict:
        return {
            "peer": self.peer,
            "score": self.score,
            "healthy": self.healthy,
            "samples": self.samples,
            "error_rate": self.error_rate,
            "mean_latency_s": self.mean_latency_s,
            "p95_latency_s": self.p95_latency_s,
        }


class HealthTracker:
    """Scores peers from windowed latency/error observations.

    ``record(peer, latency_s, ok)`` is the single ingest point (the
    router calls it per attempt); reads recompute scores lazily from
    the rolling windows, so a peer that stops receiving traffic ages
    out as its buckets rotate away.
    """

    def __init__(self, events: EventLog | None = None,
                 clock=time.monotonic, width_s: float = 1.0,
                 buckets: int = 30, window_s: float | None = None,
                 latency_tolerance: float = 3.0,
                 demote_below: float = 0.5, restore_above: float = 0.8,
                 min_samples: int = 3):
        if not 0.0 < demote_below <= restore_above <= 1.0:
            raise ValueError(
                f"thresholds demote_below={demote_below} "
                f"restore_above={restore_above} must satisfy "
                "0 < demote <= restore <= 1")
        if latency_tolerance < 1.0:
            raise ValueError(
                f"latency_tolerance {latency_tolerance} must be >= 1")
        self.events = events
        self.window_s = window_s
        self.latency_tolerance = latency_tolerance
        self.demote_below = demote_below
        self.restore_above = restore_above
        self.min_samples = min_samples
        self._latency = RollingWindowFamily(width_s, buckets, clock,
                                            eps=0.01)
        self._errors = RollingWindowFamily(width_s, buckets, clock,
                                           eps=None)
        self._healthy: dict[str, bool] = {}

    # -- ingest ---------------------------------------------------------------

    def record(self, peer: str, latency_s: float, ok: bool = True) -> None:
        """One attempt against ``peer``: its latency and outcome."""
        self._latency.labels(peer).observe(latency_s)
        self._errors.labels(peer).observe(0.0 if ok else 1.0)

    # -- scoring --------------------------------------------------------------

    def _windowed(self, peer: str) -> tuple[int, float, float, float]:
        """(samples, mean latency, p95 latency, error rate) for peer."""
        latency = self._latency.get(peer)
        errors = self._errors.get(peer)
        if latency is None:
            return 0, 0.0, 0.0, 0.0
        samples = latency.count(self.window_s)
        if samples == 0:
            return 0, 0.0, 0.0, 0.0
        mean = latency.mean(self.window_s)
        p95 = latency.quantile(95, self.window_s)
        error_rate = 0.0
        if errors is not None:
            error_count = errors.count(self.window_s)
            if error_count:
                error_rate = errors.sum(self.window_s) / error_count
        return samples, mean, p95, error_rate

    def baseline(self) -> float:
        """The fleet latency baseline: the lower median of per-peer
        windowed means (robust to one degraded outlier)."""
        means = sorted(
            mean for _, mean, _, _ in
            (self._windowed(peer) for peer in self._latency.names())
            if mean > 0.0)
        if not means:
            return 0.0
        return means[(len(means) - 1) // 2]

    def health(self, peer: str) -> PeerHealth:
        """Recompute ``peer``'s standing from the current windows,
        applying demote/restore hysteresis (and emitting events on
        transitions)."""
        samples, mean, p95, error_rate = self._windowed(peer)
        state = PeerHealth(peer=peer, samples=samples,
                           error_rate=error_rate, mean_latency_s=mean,
                           p95_latency_s=p95)
        if samples < self.min_samples:
            # Not enough evidence to indict: score stays 1.0 but the
            # peer keeps any prior demotion until data clears it.
            state.healthy = self._healthy.get(peer, True)
            return state
        latency_factor = 1.0
        fleet = self.baseline()
        if fleet > 0.0 and mean > self.latency_tolerance * fleet:
            latency_factor = (self.latency_tolerance * fleet) / mean
        state.score = max(0.0, (1.0 - error_rate) * latency_factor)

        was_healthy = self._healthy.get(peer, True)
        if was_healthy and state.score < self.demote_below:
            self._healthy[peer] = False
            if self.events is not None:
                self.events.emit(
                    "health_demoted",
                    f"peer {peer}: score {state.score:.2f} below "
                    f"{self.demote_below:g} (mean latency "
                    f"{mean * 1000:.2f} ms vs fleet "
                    f"{fleet * 1000:.2f} ms, errors "
                    f"{error_rate:.0%})",
                    severity="warning", peer=peer, score=state.score,
                    mean_latency_s=mean, error_rate=error_rate)
        elif not was_healthy and state.score > self.restore_above:
            self._healthy[peer] = True
            if self.events is not None:
                self.events.emit(
                    "health_restored",
                    f"peer {peer}: score recovered to "
                    f"{state.score:.2f}",
                    severity="info", peer=peer, score=state.score)
        state.healthy = self._healthy.get(peer, True)
        return state

    def healthy(self, peer: str) -> bool:
        """Routing predicate: refreshes the score, returns standing."""
        return self.health(peer).healthy

    def peers(self) -> list[str]:
        return self._latency.names()

    def snapshot(self) -> list[dict]:
        return [self.health(peer).snapshot() for peer in self.peers()]
