"""The fleet monitor: one object owning the continuous-observability
surfaces and the wiring that connects them to a federation.

PR 6 gave each layer point-in-time telemetry (``MetricsRegistry``
counters, per-query span trees). :class:`FleetMonitor` composes the
continuous layer on top:

* a rolling latency/error window over the query stream
  (:mod:`repro.obs.windows`),
* the typed event log every wired subsystem emits into
  (:mod:`repro.obs.events`),
* SLO burn-rate alerting (:mod:`repro.obs.slo`),
* per-peer health scoring the router consults
  (:mod:`repro.obs.health`),
* a sampling profiler folding every Nth span tree
  (:mod:`repro.obs.profile`),
* windowed rates over the registry's cumulative counters
  (:class:`~repro.obs.windows.RegistryWindows`).

Wiring is opt-in and one call: ``monitor.attach(federation)`` sets
``federation.monitor`` and hands the event log to the transport and
catalog. Every instrumented site guards with a single ``is None``
check, preserving the zero-cost-when-disabled discipline — a
federation without a monitor pays one attribute read per query, and
the hot evaluator paths pay nothing at all.
"""

from __future__ import annotations

import itertools
import time

from repro.obs.events import EventLog
from repro.obs.health import HealthTracker
from repro.obs.profile import Profiler
from repro.obs.slo import SLO, BurnRatePolicy, SLOMonitor
from repro.obs.windows import RegistryWindows, RollingWindow

__all__ = ["FleetMonitor"]


class FleetMonitor:
    """Continuous observability for one federation.

    Usage::

        monitor = FleetMonitor(slow_query_s=0.050, profile_every=8)
        monitor.attach(federation)          # before building the engine
        monitor.add_slo(SLO("latency-p99", threshold_s=0.050))
        ... run workload ...
        print(render_fleet(monitor))
        monitor.events.export_jsonl("events.jsonl")
        monitor.profiler.write_folded("profile.folded")

    ``clock`` drives every window and defaults to wall time
    (``time.monotonic``); tests inject a fake clock for deterministic
    rotation. ``profile_every=N`` makes the engine trace (and the
    profiler fold) every Nth query; 0 disables sampling.
    """

    def __init__(self, clock=time.monotonic, width_s: float = 1.0,
                 buckets: int = 60, slow_query_s: float | None = None,
                 profile_every: int = 0, event_capacity: int = 1024,
                 health: HealthTracker | None = None,
                 slo: SLOMonitor | None = None):
        self.clock = clock
        self.width_s = width_s
        self.buckets = buckets
        self.slow_query_s = slow_query_s
        self.profile_every = profile_every
        self.events = EventLog(capacity=event_capacity)
        self.latency = RollingWindow(width_s, buckets, clock, eps=0.01)
        self.errors = RollingWindow(width_s, buckets, clock, eps=None)
        self.health = health if health is not None else HealthTracker(
            events=self.events, clock=clock, width_s=width_s,
            buckets=buckets)
        self.slo = slo if slo is not None else SLOMonitor(
            events=self.events, clock=clock)
        self.profiler = Profiler()
        self.registry_windows: RegistryWindows | None = None
        self.federation = None
        self.started_s = clock()
        self._sample_counter = itertools.count(1)

    # -- wiring ---------------------------------------------------------------

    def attach(self, federation) -> "FleetMonitor":
        """Install this monitor on ``federation``: the execution layer
        records queries, the transport and catalog emit events, and the
        registry's counters get windowed rates. Attach before building
        engines/catalogs where possible; ``Federation.attach_catalog``
        re-wires a catalog attached later."""
        self.federation = federation
        federation.monitor = self
        federation.transport.events = self.events
        if federation.catalog is not None:
            federation.catalog.events = self.events
        self.registry_windows = RegistryWindows(
            federation.metrics, self.width_s, self.buckets, self.clock)
        return self

    def add_slo(self, slo: SLO, policy: BurnRatePolicy | None = None):
        return self.slo.add(slo, policy)

    # -- the execution layer's hooks ------------------------------------------

    def record_query(self, wall_s: float, ok: bool = True) -> None:
        """One finished query: feed the windows, the SLO rules, and the
        slow-query detector; sample the registry counters."""
        self.latency.observe(wall_s)
        self.errors.observe(0.0 if ok else 1.0)
        if (self.slow_query_s is not None and ok
                and wall_s > self.slow_query_s):
            self.events.emit(
                "slow_query",
                f"query took {wall_s * 1000:.2f} ms "
                f"(threshold {self.slow_query_s * 1000:.2f} ms)",
                severity="warning", wall_s=wall_s)
        self.slo.record(wall_s, ok)
        if self.registry_windows is not None:
            self.registry_windows.sample()

    def should_sample_trace(self) -> bool:
        """True on every ``profile_every``-th call — the engine's
        trace-sampling decision (always False when sampling is off)."""
        if self.profile_every <= 0:
            return False
        return next(self._sample_counter) % self.profile_every == 0

    def observe_trace(self, root) -> None:
        """Fold one closed span tree into the profiler."""
        self.profiler.record(root)

    # -- reads ----------------------------------------------------------------

    def uptime_s(self) -> float:
        return self.clock() - self.started_s

    def error_rate(self, window_s: float | None = None) -> float:
        count = self.errors.count(window_s)
        return self.errors.sum(window_s) / count if count else 0.0

    def snapshot(self, window_s: float | None = None) -> dict:
        """The whole continuous view as plain data (JSON-able)."""
        return {
            "uptime_s": self.uptime_s(),
            "queries": self.latency.snapshot(window_s),
            "error_rate": self.error_rate(window_s),
            "peers": self.health.snapshot(),
            "slos": self.slo.snapshot(),
            "event_counts": self.events.counts(),
            "profile_samples": self.profiler.samples,
        }
