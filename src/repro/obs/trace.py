"""Per-query distributed tracing: span trees over the federated stack.

A :class:`Tracer` produces one span tree per query::

    query                      <- Federation.run(trace=True)
      plan                     <- planner: decompose + enumerate + lower
      rpc                      <- one XRPC round trip (dest, semantics)
        serialize / network    <- component leaves (simulated seconds)
      scatter                  <- cluster fan-out over a collection
        shard                  <- one shard call (skip / failover attrs)
          rpc                  <- the round trip the shard issued
      ship                     <- a data-shipped document
      local_exec / remote_exec <- component leaves on the query root

Nesting uses a :mod:`contextvars` variable, so the thread-pool engine
(one worker thread per query), the router's scatter fan-out (explicit
``parent=`` handoff into pool threads) and bulk-RPC batching (charges
follow the *stats* object, see below) all attribute work to the right
query even when many run at once.

Two attribution channels exist on purpose:

* **structural spans** are opened with :func:`child_span` (or
  :meth:`Tracer.start` for the root) and nest via the context
  variable;
* **time/byte charges** follow the :class:`~repro.net.stats.RunStats`
  object being charged (``stats.span``): every place that adds
  simulated seconds to a run's :class:`~repro.net.stats.TimeBreakdown`
  also calls :meth:`Span.charge` on the span bound to those stats.
  Component charges become *leaf spans* when the parent closes, so
  summing every leaf's ``sim_s`` per component reproduces the run's
  ``RunStats.times`` exactly — the Figure 8 stack, now attributed to
  the operator that spent it.

Tracing is zero-cost when off: no tracer is constructed, ``stats.span``
stays ``None`` (one attribute check per charge site), and
:func:`child_span` returns a shared no-op context manager after a
single context-variable read.
"""

from __future__ import annotations

import threading
import time
from contextvars import ContextVar

#: The TimeBreakdown components a span may be charged with (Figure 8's
#: five categories; leaf spans carry exactly these names).
COMPONENTS = ("shred", "local_exec", "serialize", "remote_exec", "network")

_current_span: ContextVar["Span | None"] = ContextVar(
    "repro_obs_current_span", default=None)


def current_span() -> "Span | None":
    """The span the calling context is inside of (None ⇒ tracing off)."""
    return _current_span.get()


class Span:
    """One node of the trace tree.

    Attributes are typed-but-free-form (``set(shard=2, bytes=123)``);
    ``charge`` accumulates simulated seconds/bytes per TimeBreakdown
    component, materialised as leaf child spans on :meth:`close`.
    Thread-safe: scatter workers may set attributes and charge a parent
    concurrently.
    """

    __slots__ = ("name", "attrs", "start_s", "end_s", "children",
                 "components", "component_bytes", "thread_id", "_lock",
                 "kind")

    def __init__(self, name: str, attrs: dict | None = None,
                 kind: str = "span"):
        self.name = name
        self.attrs: dict = attrs if attrs is not None else {}
        self.start_s = time.perf_counter()
        self.end_s: float | None = None
        self.children: list[Span] = []
        self.components: dict[str, float] = {}
        self.component_bytes: dict[str, int] = {}
        self.thread_id = threading.get_ident()
        self._lock = threading.Lock()
        self.kind = kind

    # -- tree -----------------------------------------------------------------

    def add_child(self, child: "Span") -> None:
        with self._lock:
            self.children.append(child)

    @property
    def closed(self) -> bool:
        return self.end_s is not None

    @property
    def duration_s(self) -> float:
        end = self.end_s if self.end_s is not None else time.perf_counter()
        return end - self.start_s

    def close(self) -> None:
        """End the span and materialise charged components as leaf
        child spans (idempotent)."""
        if self.end_s is not None:
            return
        with self._lock:
            if self.end_s is not None:  # pragma: no cover - double close race
                return
            end = time.perf_counter()
            for component, seconds in self.components.items():
                leaf = Span.__new__(Span)
                leaf.name = component
                leaf.attrs = {"sim_s": seconds}
                nbytes = self.component_bytes.get(component, 0)
                if nbytes:
                    leaf.attrs["bytes"] = nbytes
                leaf.start_s = self.start_s
                leaf.end_s = end
                leaf.children = []
                leaf.components = {}
                leaf.component_bytes = {}
                leaf.thread_id = self.thread_id
                leaf._lock = threading.Lock()
                leaf.kind = "component"
                self.children.append(leaf)
            self.end_s = end

    # -- attributes & charges -------------------------------------------------

    def set(self, **attrs) -> "Span":
        """Attach typed attributes (last write wins per key)."""
        with self._lock:
            self.attrs.update(attrs)
        return self

    def add(self, key: str, amount) -> "Span":
        """Accumulate a numeric attribute (``add("bytes", 512)``)."""
        with self._lock:
            self.attrs[key] = self.attrs.get(key, 0) + amount
        return self

    def charge(self, component: str, seconds: float,
               nbytes: int = 0) -> None:
        """Accumulate simulated seconds (and optionally wire bytes)
        under one TimeBreakdown ``component`` of this span."""
        with self._lock:
            self.components[component] = (
                self.components.get(component, 0.0) + seconds)
            if nbytes:
                self.component_bytes[component] = (
                    self.component_bytes.get(component, 0) + nbytes)

    # -- reductions -----------------------------------------------------------

    def iter_spans(self):
        """Depth-first iteration over the subtree (self included)."""
        yield self
        for child in list(self.children):
            yield from child.iter_spans()

    def leaves(self) -> list["Span"]:
        """Every component leaf in the subtree."""
        return [span for span in self.iter_spans()
                if span.kind == "component"]

    def component_totals(self) -> dict[str, float]:
        """Simulated seconds per component summed over every leaf of
        the subtree — comparable to ``RunStats.times.as_dict()`` keys
        by construction (see :data:`COMPONENTS`)."""
        totals: dict[str, float] = {}
        for leaf in self.leaves():
            totals[leaf.name] = (totals.get(leaf.name, 0.0)
                                 + leaf.attrs.get("sim_s", 0.0))
        return totals

    def find(self, name: str) -> "Span | None":
        """First span named ``name`` in document (depth-first) order."""
        for span in self.iter_spans():
            if span.name == name:
                return span
        return None

    def find_all(self, name: str) -> list["Span"]:
        return [span for span in self.iter_spans() if span.name == name]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "open" if not self.closed else f"{self.duration_s * 1e3:.2f}ms"
        return f"<Span {self.name} {state} attrs={self.attrs!r}>"


class _SpanContext:
    """Context manager entering/exiting one real span."""

    __slots__ = ("span", "parent", "_token")

    def __init__(self, span: Span, parent: Span | None):
        self.span = span
        self.parent = parent
        self._token = None

    def __enter__(self) -> Span:
        if self.parent is not None:
            self.parent.add_child(self.span)
        self._token = _current_span.set(self.span)
        return self.span

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc is not None:
            self.span.set(error=f"{type(exc).__name__}: {exc}")
        self.span.close()
        _current_span.reset(self._token)


class _NoopSpanContext:
    """Shared do-nothing context manager (tracing off)."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, exc_type, exc, tb) -> None:
        return None


_NOOP_CONTEXT = _NoopSpanContext()


def child_span(name: str, parent: Span | None = None,
               **attrs) -> "_SpanContext | _NoopSpanContext":
    """Open a span under ``parent`` (default: the context's current
    span). When there is no active span — tracing off — this returns a
    shared no-op context manager whose ``as`` value is ``None``, so
    instrumentation sites cost one context-variable read."""
    if parent is None:
        parent = _current_span.get()
        if parent is None:
            return _NOOP_CONTEXT
    return _SpanContext(Span(name, attrs or None), parent)


class _BindStatsSpan:
    """Temporarily bind ``stats.span`` to ``span`` (restores on exit),
    so transport charges inside the window attribute to ``span``."""

    __slots__ = ("stats", "span", "_previous")

    def __init__(self, stats, span: Span | None):
        self.stats = stats
        self.span = span
        self._previous = None

    def __enter__(self):
        if self.span is not None:
            self._previous = self.stats.span
            self.stats.span = self.span
        return self.span

    def __exit__(self, exc_type, exc, tb) -> None:
        if self.span is not None:
            self.stats.span = self._previous


def bind_stats_span(stats, span: Span | None) -> _BindStatsSpan:
    """Charge-attribution window: while active, simulated-time charges
    against ``stats`` land on ``span`` (no-op when ``span`` is None)."""
    return _BindStatsSpan(stats, span)


class Tracer:
    """Produces one span tree; owns the root.

    Usage::

        tracer = Tracer()
        with tracer.start("query", at="local") as root:
            with child_span("plan"):
                ...
        tree = tracer.root          # closed span tree
    """

    __slots__ = ("root",)

    #: Real tracers are enabled; :data:`NOOP_TRACER` overrides this.
    enabled = True

    def __init__(self) -> None:
        self.root: Span | None = None

    def start(self, name: str = "query", **attrs) -> _SpanContext:
        """Open the root span (also enters it as the context's current
        span, so nested :func:`child_span` calls attach to it)."""
        span = Span(name, attrs or None)
        if self.root is None:
            self.root = span
        else:  # a second root: attach under the first (defensive)
            self.root.add_child(span)
        return _SpanContext(span, parent=None)


class NoopTracer:
    """The disabled tracer: every span is the shared no-op context."""

    __slots__ = ()

    enabled = False
    root = None

    def start(self, name: str = "query", **attrs) -> _NoopSpanContext:
        return _NOOP_CONTEXT


NOOP_TRACER = NoopTracer()
