"""Folding span trees into collapsed-stack (flamegraph) profiles.

A span tree answers "where did *this query* spend its time"; a profile
answers "where does *the fleet* spend its time" by folding many trees
into one weighted stack collection. The output format is the
collapsed-stack convention every flamegraph renderer reads::

    query;scatter;shard;rpc;network 1432

— one line per unique root-to-frame path, weight in integer
microseconds, ``;``-joined frame names.

Two weightings, matching the two clocks the tracer keeps:

* ``wall`` — each span's *self* wall time (its duration minus its
  children's): where the real process waited. Component leaves are
  excluded here; they share their parent's wall interval and would
  double-count it.
* ``sim`` — each component leaf's simulated seconds at its path: the
  Figure 8 cost-model breakdown, attributed to the operator that spent
  it. By the charge-follows-stats invariant, the folded ``sim`` total
  equals ``sum(root.component_totals().values())`` exactly.

:class:`Profiler` accumulates folds across queries (the fleet
monitor's trace sampling feeds it every Nth span tree) and writes
``*.folded`` files for CI artifacts.
"""

from __future__ import annotations

import threading

from repro.obs.trace import Span

__all__ = ["collapse_spans", "Profiler"]

_US = 1_000_000


def _fold(span: Span, prefix: str, weight: str,
          out: dict[str, float]) -> None:
    stack = f"{prefix};{span.name}" if prefix else span.name
    if weight == "wall":
        if span.kind == "component":
            return  # shares the parent's wall interval
        child_s = sum(child.duration_s for child in span.children
                      if child.kind != "component")
        self_s = max(0.0, span.duration_s - child_s)
        if self_s > 0.0:
            out[stack] = out.get(stack, 0.0) + self_s
    else:  # sim
        if span.kind == "component":
            out[stack] = out.get(stack, 0.0) + span.attrs.get("sim_s", 0.0)
            return
    for child in span.children:
        _fold(child, stack, weight, out)


def collapse_spans(root: Span, weight: str = "wall") -> dict[str, float]:
    """Fold one span tree into ``{stack: seconds}``.

    ``weight="wall"`` attributes each span's self wall time to its
    path; ``weight="sim"`` attributes each component leaf's simulated
    seconds to its path (so the total equals the run's
    ``RunStats.times`` sum by the charge invariant).
    """
    if weight not in ("wall", "sim"):
        raise ValueError(f"weight {weight!r} not in ('wall', 'sim')")
    out: dict[str, float] = {}
    _fold(root, "", weight, out)
    return out


class Profiler:
    """Accumulates collapsed stacks across many span trees.

    Thread-safe; :meth:`record` is called once per sampled trace.
    Weights are kept in float seconds internally and emitted as
    integer microseconds (the collapsed-stack convention), so tiny
    stacks only vanish at emission, not during accumulation.
    """

    def __init__(self):
        self._stacks: dict[str, dict[str, float]] = {
            "wall": {}, "sim": {}}
        self.samples = 0
        self._lock = threading.Lock()

    def record(self, root: Span) -> None:
        """Fold ``root`` under both weightings into the profile."""
        wall = collapse_spans(root, "wall")
        sim = collapse_spans(root, "sim")
        with self._lock:
            self.samples += 1
            for stack, seconds in wall.items():
                self._stacks["wall"][stack] = (
                    self._stacks["wall"].get(stack, 0.0) + seconds)
            for stack, seconds in sim.items():
                self._stacks["sim"][stack] = (
                    self._stacks["sim"].get(stack, 0.0) + seconds)

    def stacks(self, weight: str = "wall") -> dict[str, float]:
        with self._lock:
            return dict(self._stacks[weight])

    def folded(self, weight: str = "wall") -> str:
        """The accumulated profile as collapsed-stack text (sorted by
        stack for deterministic artifacts; weights in µs)."""
        with self._lock:
            stacks = sorted(self._stacks[weight].items())
        return "\n".join(f"{stack} {round(seconds * _US)}"
                         for stack, seconds in stacks)

    def write_folded(self, path, weight: str = "wall") -> int:
        """Write ``path`` in collapsed-stack format; returns the number
        of stack lines."""
        text = self.folded(weight)
        with open(path, "w", encoding="utf-8") as fh:
            if text:
                fh.write(text + "\n")
        return text.count("\n") + 1 if text else 0
