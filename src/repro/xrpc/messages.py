"""XRPC message structures and their XML wire format.

Follows Figures 4 and 5 of the paper: an ``env:Envelope``/``env:Body``
SOAP skeleton around an ``xrpc:request`` (or ``xrpc:response``) that
carries

* the static-context attributes (Problem 5 Class 1),
* an optional ``xrpc:projection-paths`` element with ``used-path`` /
  ``returned-path`` children (its presence selects pass-by-projection
  for the response, exactly as Section VI specifies),
* an ``xrpc:fragments`` preamble holding each XML fragment once,
  sorted in document order (pass-by-fragment / projection), and
* one ``xrpc:call`` per Bulk RPC call, each parameter a sequence of
  items: atomics, verbatim node copies (pass-by-value), or
  ``fragid``/``nodeid`` references into the fragments preamble.

The shipped function body travels as query text in ``xrpc:query`` —
XRPC is "a pure XQuery rewriter (not making any assumptions on the
system internals of the participating peers)", so shipping source text
is precisely the interoperability story of the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import XrpcMarshalError
from repro.xmldb import axes as axes_mod
from repro.xmldb.document import Document
from repro.xmldb.node import Node, NodeKind
from repro.xmldb.parser import parse_document
from repro.xmldb.serializer import escape_attribute, escape_text


@dataclass(frozen=True)
class Atomic:
    """An atomic item: XML Schema type name plus lexical form."""

    type_name: str
    lexical: str


@dataclass(frozen=True)
class NodeCopy:
    """A pass-by-value node copy: serialised subtree text.

    ``node_kind`` distinguishes elements from attribute/text copies
    (standalone attributes have no XML syntax; XRPC wraps them, per
    footnote 2 of the paper).
    """

    node_kind: str  # "element" | "attribute" | "text"
    name: str       # attribute name (empty otherwise)
    xml: str        # serialised content


@dataclass(frozen=True)
class NodeRef:
    """A pass-by-fragment reference: fragid/nodeid per Figure 4."""

    fragid: int
    nodeid: int


@dataclass(frozen=True)
class AttrRef:
    """An attribute reference: owner nodeid plus attribute name."""

    fragid: int
    nodeid: int
    name: str


Item = Atomic | NodeCopy | NodeRef | AttrRef


@dataclass
class Call:
    """One function application: named parameter sequences."""

    params: list[tuple[str, list[Item]]] = field(default_factory=list)


@dataclass
class RequestMessage:
    """An XRPC request (possibly bulk: several calls, same function)."""

    query: str                       # shipped function body (XQuery text)
    param_names: list[str]
    calls: list[Call]
    fragments: list[str] = field(default_factory=list)
    static_attrs: dict[str, str] = field(default_factory=dict)
    #: Response projection paths (Urel/Rrel(vxrpc)); presence selects
    #: the pass-by-projection response format.
    used_paths: list[str] | None = None
    returned_paths: list[str] | None = None

    def to_xml(self) -> str:
        out = [_ENVELOPE_OPEN, "<xrpc:request"]
        out.extend(f' {key.replace(":", "-")}='
                   f'"{escape_attribute(self.static_attrs[key])}"'
                   for key in sorted(self.static_attrs))
        out.append(">")
        if self.used_paths is not None or self.returned_paths is not None:
            out.append("<xrpc:projection-paths>")
            out.extend(f"<xrpc:used-path>{escape_text(path)}"
                       f"</xrpc:used-path>"
                       for path in self.used_paths or [])
            out.extend(f"<xrpc:returned-path>{escape_text(path)}"
                       f"</xrpc:returned-path>"
                       for path in self.returned_paths or [])
            out.append("</xrpc:projection-paths>")
        _fragments_to_xml(self.fragments, out)
        out.append(f"<xrpc:query>{escape_text(self.query)}</xrpc:query>")
        out.append("<xrpc:params>")
        out.extend(f"<xrpc:name>{escape_text(name)}</xrpc:name>"
                   for name in self.param_names)
        out.append("</xrpc:params>")
        for call in self.calls:
            out.append("<xrpc:call>")
            for _name, items in call.params:
                _sequence_to_xml(items, out)
            out.append("</xrpc:call>")
        out.append("</xrpc:request>")
        out.append(_ENVELOPE_CLOSE)
        return "".join(out)

    @classmethod
    def from_xml(cls, text: str) -> "RequestMessage":
        doc = parse_document(text, uri="xrpc:request")
        request = _find_child(_body(doc), "xrpc:request")
        # Attribute names were flattened ("xrpc:base-uri" ->
        # "xrpc-base-uri") on the wire; restore the prefix.
        static_attrs = {}
        for attr in axes_mod.attribute(request):
            name = attr.name
            if name.startswith("xrpc-"):
                name = "xrpc:" + name[len("xrpc-"):]
            static_attrs[name] = attr.value
        used_paths: list[str] | None = None
        returned_paths: list[str] | None = None
        projection = _find_optional_child(request, "xrpc:projection-paths")
        if projection is not None:
            used_paths = [n.string_value() for n in
                          axes_mod.axis_step(projection, "child",
                                             "xrpc:used-path")]
            returned_paths = [n.string_value() for n in
                              axes_mod.axis_step(projection, "child",
                                                 "xrpc:returned-path")]
        fragments = _fragments_from_xml(request)
        query = _find_child(request, "xrpc:query").string_value()
        params_elem = _find_child(request, "xrpc:params")
        param_names = [n.string_value() for n in
                       axes_mod.axis_step(params_elem, "child", "xrpc:name")]
        calls = []
        for call_elem in axes_mod.axis_step(request, "child", "xrpc:call"):
            sequences = [
                _sequence_from_xml(seq_elem)
                for seq_elem in axes_mod.axis_step(call_elem, "child",
                                                   "xrpc:sequence")
            ]
            calls.append(Call(list(zip(param_names, sequences))))
        return cls(query=query, param_names=param_names, calls=calls,
                   fragments=fragments, static_attrs=static_attrs,
                   used_paths=used_paths, returned_paths=returned_paths)


@dataclass
class ResponseMessage:
    """An XRPC response: one result sequence per request call."""

    results: list[list[Item]]
    fragments: list[str] = field(default_factory=list)

    def to_xml(self) -> str:
        out = [_ENVELOPE_OPEN, "<xrpc:response>"]
        _fragments_to_xml(self.fragments, out)
        for items in self.results:
            out.append("<xrpc:call>")
            _sequence_to_xml(items, out)
            out.append("</xrpc:call>")
        out.append("</xrpc:response>")
        out.append(_ENVELOPE_CLOSE)
        return "".join(out)

    @classmethod
    def from_xml(cls, text: str) -> "ResponseMessage":
        doc = parse_document(text, uri="xrpc:response")
        response = _find_child(_body(doc), "xrpc:response")
        fragments = _fragments_from_xml(response)
        results = []
        for call_elem in axes_mod.axis_step(response, "child", "xrpc:call"):
            sequences = list(axes_mod.axis_step(call_elem, "child",
                                                "xrpc:sequence"))
            if len(sequences) != 1:
                raise XrpcMarshalError("response call must hold exactly "
                                       "one sequence")
            results.append(_sequence_from_xml(sequences[0]))
        return cls(results=results, fragments=fragments)


# ---------------------------------------------------------------------------
# Wire helpers
# ---------------------------------------------------------------------------

_ENVELOPE_OPEN = ('<env:Envelope xmlns:env='
                  '"http://www.w3.org/2003/05/soap-envelope" '
                  'xmlns:xrpc="http://monetdb.cwi.nl/XQuery">'
                  "<env:Body>")
_ENVELOPE_CLOSE = "</env:Body></env:Envelope>"


def _fragments_to_xml(fragments: list[str], out: list[str]) -> None:
    if not fragments:
        out.append("<xrpc:fragments/>")
        return
    out.append("<xrpc:fragments>")
    out.extend(f"<xrpc:fragment>{fragment}</xrpc:fragment>"
               for fragment in fragments)
    out.append("</xrpc:fragments>")


def _fragments_from_xml(request: Node) -> list[str]:
    from repro.xmldb.serializer import serialize_node

    fragments_elem = _find_child(request, "xrpc:fragments")
    out = []
    for fragment in axes_mod.axis_step(fragments_elem, "child",
                                       "xrpc:fragment"):
        children = list(axes_mod.child(fragment))
        if len(children) != 1 or children[0].kind != NodeKind.ELEMENT:
            raise XrpcMarshalError("a fragment must hold one element")
        out.append(serialize_node(children[0]))
    return out


def _sequence_to_xml(items: list[Item], out: list[str]) -> None:
    out.append("<xrpc:sequence>")
    for item in items:
        if isinstance(item, Atomic):
            out.append(f'<xrpc:atomic type="{item.type_name}">'
                       f"{escape_text(item.lexical)}</xrpc:atomic>")
        elif isinstance(item, NodeCopy):
            if item.node_kind == "element":
                out.append(f"<xrpc:element>{item.xml}</xrpc:element>")
            elif item.node_kind == "attribute":
                out.append(f'<xrpc:attribute name='
                           f'"{escape_attribute(item.name)}">'
                           f"{escape_text(item.xml)}</xrpc:attribute>")
            else:
                out.append(f"<xrpc:text>{escape_text(item.xml)}"
                           f"</xrpc:text>")
        elif isinstance(item, NodeRef):
            out.append(f'<xrpc:element fragid="{item.fragid}" '
                       f'nodeid="{item.nodeid}"/>')
        elif isinstance(item, AttrRef):
            out.append(f'<xrpc:attribute fragid="{item.fragid}" '
                       f'nodeid="{item.nodeid}" '
                       f'name="{escape_attribute(item.name)}"/>')
        else:  # pragma: no cover - exhaustive
            raise XrpcMarshalError(f"unknown item {item!r}")
    out.append("</xrpc:sequence>")


def _sequence_from_xml(seq_elem: Node) -> list[Item]:
    items: list[Item] = []
    for child in axes_mod.child(seq_elem):
        if child.kind != NodeKind.ELEMENT:
            continue
        attrs = {a.name: a.value for a in axes_mod.attribute(child)}
        if child.name == "xrpc:atomic":
            items.append(Atomic(attrs.get("type", "xs:string"),
                                child.string_value()))
        elif child.name == "xrpc:element":
            if "fragid" in attrs:
                items.append(NodeRef(int(attrs["fragid"]),
                                     int(attrs["nodeid"])))
            else:
                from repro.xmldb.serializer import serialize_node

                inner = [c for c in axes_mod.child(child)]
                if len(inner) == 1 and inner[0].kind == NodeKind.ELEMENT:
                    items.append(NodeCopy("element", "",
                                          serialize_node(inner[0])))
                else:
                    raise XrpcMarshalError(
                        "element copy must hold one element")
        elif child.name == "xrpc:attribute":
            if "fragid" in attrs:
                items.append(AttrRef(int(attrs["fragid"]),
                                     int(attrs["nodeid"]),
                                     attrs.get("name", "")))
            else:
                items.append(NodeCopy("attribute", attrs.get("name", ""),
                                      child.string_value()))
        elif child.name == "xrpc:text":
            items.append(NodeCopy("text", "", child.string_value()))
        else:
            raise XrpcMarshalError(f"unknown sequence item <{child.name}>")
    return items


def _body(doc: Document) -> Node:
    envelope = _find_child(doc.root, "env:Envelope")
    return _find_child(envelope, "env:Body")


def _find_child(node: Node, name: str) -> Node:
    for child in axes_mod.axis_step(node, "child", name):
        return child
    raise XrpcMarshalError(f"missing <{name}> in message")


def _find_optional_child(node: Node, name: str) -> Node | None:
    for child in axes_mod.axis_step(node, "child", name):
        return child
    return None
