"""Marshalling sequences into message items under the three semantics.

* **pass-by-value** — every node item becomes an independent deep copy
  in the message (Figure 1): identity, order and structural context are
  lost, exactly as Section II's Problems 1-4 describe.
* **pass-by-fragment** — all node items are grouped into a fragments
  preamble: per source document the *maximal* nodes (those not
  contained in another shipped node) are serialised once, in document
  order, and every item becomes a ``fragid``/``nodeid`` reference
  (Figure 4). Shredding a fragment once per message on the receiving
  side preserves identity, order, and ancestor/descendant
  relationships *within* the message.
* **pass-by-projection** — like by-fragment, but the fragment for each
  source document is the runtime projection (Algorithm 1) of the used
  and returned node sets obtained by evaluating the relative projection
  paths against the actual values (Section VI-B). Ancestor chains are
  preserved up to the lowest common ancestor, so reverse/horizontal
  axes and fn:root/fn:id work on the receiving side.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import XrpcMarshalError
from repro.paths.analysis import PathSets
from repro.paths.relpath import RelPath, parse_rel_path
from repro.xmldb.document import Document, DocumentBuilder
from repro.xmldb.index import structural_index
from repro.xmldb.node import Node, NodeKind
from repro.xmldb.parser import parse_fragment
from repro.xmldb.projection import project
from repro.xmldb.serializer import serialize_node
from repro.xquery.xdm import UntypedAtomic, format_double

from repro.xrpc.messages import Atomic, AttrRef, Call, Item, NodeCopy, NodeRef

# ---------------------------------------------------------------------------
# Atomics
# ---------------------------------------------------------------------------


def marshal_atomic(value) -> Atomic:
    if isinstance(value, bool):
        return Atomic("xs:boolean", "true" if value else "false")
    if isinstance(value, int):
        return Atomic("xs:integer", str(value))
    if isinstance(value, float):
        return Atomic("xs:double", format_double(value))
    if isinstance(value, UntypedAtomic):
        return Atomic("xs:untypedAtomic", str(value))
    if isinstance(value, str):
        return Atomic("xs:string", value)
    raise XrpcMarshalError(f"cannot marshal atomic {type(value).__name__}")


def unmarshal_atomic(item: Atomic):
    if item.type_name == "xs:boolean":
        return item.lexical == "true"
    if item.type_name == "xs:integer":
        return int(item.lexical)
    if item.type_name in ("xs:double", "xs:decimal", "xs:float"):
        return float(item.lexical)
    if item.type_name == "xs:untypedAtomic":
        return UntypedAtomic(item.lexical)
    return item.lexical


# ---------------------------------------------------------------------------
# Marshalling (sender side)
# ---------------------------------------------------------------------------


@dataclass
class MarshalResult:
    """Items per call/param plus the shared fragments preamble."""

    calls: list[Call]
    fragments: list[str] = field(default_factory=list)


def marshal_calls(calls: list[list[tuple[str, list]]], semantics: str,
                  param_paths: dict[str, PathSets] | None = None
                  ) -> MarshalResult:
    """Marshal the parameter sequences of one (bulk) request.

    ``calls`` is a list of calls, each a list of ``(param_name,
    sequence)`` pairs. ``semantics`` is one of ``by-value``,
    ``by-fragment``, ``by-projection``; the latter consumes
    ``param_paths`` (relative used/returned paths per parameter).
    """
    if semantics == "by-value":
        marshalled = [
            Call([(name, [_by_value_item(item) for item in seq])
                  for name, seq in call])
            for call in calls
        ]
        return MarshalResult(marshalled)
    return _marshal_with_fragments(calls, semantics, param_paths or {})


def marshal_result(result: list, semantics: str,
                   used_paths: list[str] | None,
                   returned_paths: list[str] | None) -> MarshalResult:
    """Marshal a function result sequence for the response message.

    Under by-projection the request's projection paths are evaluated
    against the result sequence to project the response fragments.
    """
    path_sets = None
    if semantics == "by-projection":
        path_sets = PathSets(
            used={parse_rel_path(p) for p in used_paths or []},
            returned={parse_rel_path(p) for p in returned_paths or []},
        )
    calls = [[("result", result)]]
    if semantics == "by-value":
        return marshal_calls(calls, "by-value")
    return _marshal_with_fragments(
        calls, semantics,
        {"result": path_sets} if path_sets is not None else {})


def _by_value_item(item) -> Item:
    if not isinstance(item, Node):
        return marshal_atomic(item)
    kind = item.kind
    if kind == NodeKind.ATTRIBUTE:
        return NodeCopy("attribute", item.name, item.value)
    if kind == NodeKind.TEXT:
        return NodeCopy("text", "", item.value)
    if kind == NodeKind.DOCUMENT:
        # Serialising a document node ships its root element.
        from repro.xmldb import axes as axes_mod

        for child in axes_mod.child(item):
            if child.kind == NodeKind.ELEMENT:
                return NodeCopy("element", "", serialize_node(child))
        raise XrpcMarshalError("document node without root element")
    return NodeCopy("element", "", serialize_node(item))


@dataclass
class _FragmentPlan:
    """One source document's contribution to the fragments preamble."""

    fragid: int
    root_pre: int                       # in the (possibly projected) doc
    doc: Document                       # the doc the serialised text is from
    pre_map: dict[int, int] | None      # source pre -> projected pre

    def nodeid(self, source_pre: int) -> int:
        """1-based index of the node among the fragment's
        ``descendant::node()`` enumeration (attributes excluded),
        where index 1 is the fragment root itself — an O(1) rank
        difference on the structural index."""
        pre = source_pre if self.pre_map is None else self.pre_map[source_pre]
        return structural_index(self.doc).nodeid(self.root_pre, pre)


def _marshal_with_fragments(calls: list[list[tuple[str, list]]],
                            semantics: str,
                            param_paths: dict[str, PathSets]
                            ) -> MarshalResult:
    # 1. Gather all node items, grouped by source document.
    by_doc: dict[int, list[Node]] = {}
    docs: dict[int, Document] = {}
    for call in calls:
        for name, seq in call:
            for item in seq:
                if isinstance(item, Node):
                    by_doc.setdefault(id(item.doc), []).append(item)
                    docs[id(item.doc)] = item.doc

    # 2. Evaluate projection paths (by-projection) per parameter.
    used_by_doc: dict[int, list[Node]] = {}
    returned_by_doc: dict[int, list[Node]] = {}
    if semantics == "by-projection":
        for call in calls:
            for name, seq in call:
                sets = param_paths.get(name)
                nodes = [i for i in seq if isinstance(i, Node)]
                if not nodes:
                    continue
                if sets is None:
                    sets = PathSets(returned={RelPath()})
                _evaluate_paths_into(nodes, sets, used_by_doc,
                                     returned_by_doc, docs)

    # 3. Build one fragment per source document.
    plans: dict[int, _FragmentPlan] = {}
    fragments: list[str] = []
    ordered_docs = sorted(docs.values(), key=lambda d: d.doc_seq)
    for doc in ordered_docs:
        doc_key = id(doc)
        nodes = by_doc[doc_key]
        if semantics == "by-projection":
            plan, text = _projected_fragment(
                doc, nodes,
                used_by_doc.get(doc_key, []),
                returned_by_doc.get(doc_key, []),
                len(fragments) + 1)
        else:
            plan, text = _containment_fragment(doc, nodes,
                                               len(fragments) + 1)
        plans[doc_key] = plan
        fragments.append(text)

    # 4. Emit items as references into the fragments.
    out_calls: list[Call] = []
    for call in calls:
        out_params = []
        for name, seq in call:
            items: list[Item] = []
            for item in seq:
                if not isinstance(item, Node):
                    items.append(marshal_atomic(item))
                    continue
                items.append(_reference_item(item, plans[id(item.doc)]))
            out_params.append((name, items))
        out_calls.append(Call(out_params))
    return MarshalResult(out_calls, fragments)


def _evaluate_paths_into(nodes: list[Node], sets: PathSets,
                         used_by_doc: dict[int, list[Node]],
                         returned_by_doc: dict[int, list[Node]],
                         docs: dict[int, Document]) -> None:
    """Runtime path evaluation: used/returned node sets per document.

    The nodes themselves always join the used set — they are the
    anchors the fragid/nodeid references point at. Additionally, every
    path *prefix* ending in a reverse/horizontal or pseudo step
    contributes its results as used anchors: the receiving peer must
    find those upward/sideways targets in the fragment, so the
    Algorithm 1 LCA trim may not cut them away (this realises the
    paper's "taking the lowest common ancestor of those" for fn:root
    and friends)."""
    for node in nodes:
        used_by_doc.setdefault(id(node.doc), []).append(node)

    def record(path: RelPath, target: dict[int, list[Node]]) -> None:
        for result in path.evaluate(nodes):
            target.setdefault(id(result.doc), []).append(result)
            docs[id(result.doc)] = result.doc
        for prefix in _non_downward_prefixes(path):
            for result in prefix.evaluate(nodes):
                used_by_doc.setdefault(id(result.doc), []).append(result)
                docs[id(result.doc)] = result.doc

    for path in sets.used:
        record(path, used_by_doc)
    for path in sets.returned:
        record(path, returned_by_doc)


_NON_DOWNWARD = frozenset({
    "parent", "ancestor", "ancestor-or-self", "preceding",
    "preceding-sibling", "following", "following-sibling",
    "root()", "id()", "idref()",
})


def _non_downward_prefixes(path: RelPath) -> list[RelPath]:
    return [RelPath(path.steps[:index + 1])
            for index, step in enumerate(path.steps[:-1])
            if step.axis in _NON_DOWNWARD]


def _containment_fragment(doc: Document, nodes: list[Node],
                          fragid: int) -> tuple[_FragmentPlan, str]:
    """Pass-by-fragment: serialise the maximal shipped nodes once, in
    document order ("if a sent node is a descendant of another one, it
    is not serialized twice")."""
    element_pres = sorted({_anchor_pre(node) for node in nodes})
    roots: list[int] = []
    current_end = -1
    for pre in element_pres:
        if pre > current_end:
            roots.append(pre)
            current_end = pre + doc.sizes[pre]
    if len(roots) == 1 and doc.kinds[roots[0]] == NodeKind.ELEMENT:
        root_pre = roots[0]
        plan = _FragmentPlan(fragid, root_pre, doc, None)
        return plan, serialize_node(Node(doc, root_pre))
    # Several disjoint maximal nodes: ship their subtrees under one
    # synthetic container so nodeid addressing stays single-rooted.
    # Their relative document order is preserved.
    builder = DocumentBuilder(f"{doc.uri}#fragment")
    builder.start_element("xrpc:forest")
    for pre in roots:
        builder.copy_subtree(Node(doc, pre))
    builder.end_element()
    forest = builder.finish()
    pre_map: dict[int, int] = {}
    cursor = 1
    for pre in roots:
        span = doc.sizes[pre] + 1
        for offset in range(span):
            pre_map[pre + offset] = cursor + offset
        cursor += span
    plan = _FragmentPlan(fragid, 0, forest, pre_map)
    return plan, serialize_node(forest.root)


def _projected_fragment(doc: Document, nodes: list[Node],
                        used: list[Node], returned: list[Node],
                        fragid: int) -> tuple[_FragmentPlan, str]:
    """Pass-by-projection: Algorithm 1 over the used/returned sets."""
    anchor_used = [Node(doc, _anchor_pre(n)) for n in nodes] + used
    result = project(anchor_used, returned)
    if result is None:  # pragma: no cover - nodes is never empty here
        raise XrpcMarshalError("empty projection")
    if result.doc.kinds[0] != NodeKind.ELEMENT:
        # The LCA trim reached a non-element (e.g. a lone text node);
        # fragments must be element-rooted, fall back to containment.
        return _containment_fragment(doc, nodes + used + returned, fragid)
    plan = _FragmentPlan(fragid, 0, result.doc, result.pre_map)
    return plan, serialize_node(result.doc.root)


def _anchor_pre(node: Node) -> int:
    """The element pre anchoring a node reference: attributes are
    addressed through their owner element (footnote 2)."""
    if node.kind == NodeKind.ATTRIBUTE:
        return node.doc.parents[node.pre]
    if node.kind == NodeKind.DOCUMENT:
        # Reference the root element instead.
        for pre in range(1, len(node.doc)):
            if node.doc.kinds[pre] == NodeKind.ELEMENT:
                return pre
        raise XrpcMarshalError("document without root element")
    return node.pre


def _reference_item(node: Node, plan: _FragmentPlan) -> Item:
    if node.kind == NodeKind.ATTRIBUTE:
        return AttrRef(plan.fragid, plan.nodeid(_anchor_pre(node)),
                       node.name)
    return NodeRef(plan.fragid, plan.nodeid(_anchor_pre(node)))


# ---------------------------------------------------------------------------
# Unmarshalling (receiver side)
# ---------------------------------------------------------------------------


class _FragmentSpace:
    """The shredded fragments of one message: each fragment becomes one
    fresh document, shared by every reference into it — which is what
    preserves node identity and order within the message."""

    def __init__(self, fragments: list[str], base_uri: str):
        self.docs: list[Document] = [
            parse_fragment(text, uri=f"{base_uri}#fragment{i + 1}")
            for i, text in enumerate(fragments)
        ]
        self._nodeid_maps: list[list[int] | None] = [None] * len(self.docs)

    def resolve(self, fragid: int, nodeid: int) -> Node:
        doc = self.docs[fragid - 1]
        mapping = self._nodeid_maps[fragid - 1]
        if mapping is None:
            # The structural index's non-attribute array IS the
            # nodeid → pre mapping (nodeids are 1-based ranks).
            mapping = structural_index(doc).non_attr_pres
            self._nodeid_maps[fragid - 1] = mapping
        try:
            pre = mapping[nodeid - 1]
        except IndexError:
            raise XrpcMarshalError(
                f"nodeid {nodeid} out of range in fragment {fragid}") from None
        node = Node(doc, pre)
        # Unwrap the synthetic forest container.
        if pre == 0 and doc.names[0] == "xrpc:forest":
            raise XrpcMarshalError("reference to forest container")
        return node

    def resolve_attr(self, fragid: int, nodeid: int, name: str) -> Node:
        owner = self.resolve(fragid, nodeid)
        from repro.xmldb import axes as axes_mod

        for attr in axes_mod.attribute(owner):
            if attr.name == name:
                return attr
        raise XrpcMarshalError(f"attribute {name!r} not found via "
                               f"fragment {fragid} node {nodeid}")


def unmarshal_calls(calls: list[Call], fragments: list[str],
                    base_uri: str) -> list[list[tuple[str, list]]]:
    """Reconstruct parameter sequences on the receiving peer."""
    space = _FragmentSpace(fragments, base_uri)
    return [
        [(name, _unmarshal_sequence(items, space, base_uri))
         for name, items in call.params]
        for call in calls
    ]


def unmarshal_result(results: list[list[Item]], fragments: list[str],
                     base_uri: str) -> list[list]:
    space = _FragmentSpace(fragments, base_uri)
    return [_unmarshal_sequence(items, space, base_uri)
            for items in results]


def _unmarshal_sequence(items: list[Item], space: _FragmentSpace,
                        base_uri: str) -> list:
    out: list = []
    for item in items:
        if isinstance(item, Atomic):
            out.append(unmarshal_atomic(item))
        elif isinstance(item, NodeCopy):
            out.append(_shred_copy(item, base_uri))
        elif isinstance(item, NodeRef):
            out.append(space.resolve(item.fragid, item.nodeid))
        elif isinstance(item, AttrRef):
            out.append(space.resolve_attr(item.fragid, item.nodeid,
                                          item.name))
        else:  # pragma: no cover - exhaustive
            raise XrpcMarshalError(f"unknown item {item!r}")
    return out


def _shred_copy(item: NodeCopy, base_uri: str) -> Node:
    """Pass-by-value: each copy becomes its own fragment document."""
    if item.node_kind == "element":
        return parse_fragment(item.xml, uri=base_uri).root
    if item.node_kind == "attribute":
        doc = Document(base_uri, [NodeKind.ATTRIBUTE], [item.name],
                       [item.xml], [0], [0], [-1])
        return doc.root
    doc = Document(base_uri, [NodeKind.TEXT], [""], [item.xml],
                   [0], [0], [-1])
    return doc.root
