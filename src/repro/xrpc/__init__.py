"""The XRPC runtime: SOAP-style messages and the three marshalling
semantics (pass-by-value, pass-by-fragment, pass-by-projection).

Messages are genuinely serialised to XML text and re-parsed on the
receiving peer with the :mod:`repro.xmldb` parser — message sizes (the
paper's bandwidth metric) are the byte lengths of these texts, and the
(de)serialisation component of the Figure 8 breakdown is charged per
byte processed.
"""

from repro.xrpc.messages import (
    Atomic, NodeCopy, NodeRef, AttrRef, Call, RequestMessage,
    ResponseMessage,
)
from repro.xrpc.marshal import (
    marshal_calls, unmarshal_calls, marshal_result, unmarshal_result,
)
from repro.xrpc.peer import RequestHandler

__all__ = [
    "Atomic", "NodeCopy", "NodeRef", "AttrRef", "Call",
    "RequestMessage", "ResponseMessage",
    "marshal_calls", "unmarshal_calls", "marshal_result",
    "unmarshal_result", "RequestHandler",
]
