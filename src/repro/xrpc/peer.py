"""Peer-side request handling: the "HTTP server" box of Figure 1.

A :class:`RequestHandler` parses a request message, shreds the
parameter payload into fragment documents, evaluates the shipped
function body once per (bulk) call, and serialises the response —
projecting it first when the request carried projection paths.
"""

from __future__ import annotations

from typing import Callable

from repro.xmldb.document import Document
from repro.xquery.ast import Module
from repro.xquery.context import CostCounter, DynamicContext, StaticContext
from repro.xquery.evaluator import Evaluator
from repro.xquery.parser import parse_expr

from repro.xrpc.marshal import marshal_result, unmarshal_calls
from repro.xrpc.messages import RequestMessage, ResponseMessage


class RequestHandler:
    """Executes XRPC requests against one peer's document space."""

    def __init__(self, peer_name: str,
                 resolve_doc: Callable[[str], Document],
                 xrpc_execute: Callable[..., list],
                 semantics: str,
                 counter: CostCounter | None = None):
        self.peer_name = peer_name
        self.resolve_doc = resolve_doc
        self.xrpc_execute = xrpc_execute
        self.semantics = semantics
        self.counter = counter if counter is not None else CostCounter()

    def handle(self, request: RequestMessage) -> ResponseMessage:
        """Parse, evaluate (once per call), and marshal the response."""
        body = parse_expr(request.query)
        static = StaticContext.from_attributes(request.static_attrs)
        evaluator = Evaluator(Module([], body), static)

        calls = unmarshal_calls(request.calls, request.fragments,
                                base_uri=f"xrpc://{self.peer_name}/msg")
        results: list[list] = []
        for params in calls:
            env = DynamicContext(
                variables={name: value for name, value in params},
                resolve_doc=self.resolve_doc,
                xrpc_execute=self.xrpc_execute,
                counter=self.counter,
            )
            results.append(evaluator.evaluate(body, env))

        if self.semantics == "by-value":
            marshalled = [marshal_result(result, "by-value", None, None)
                          for result in results]
            return ResponseMessage(
                results=[m.calls[0].params[0][1] for m in marshalled])

        # Fragment/projection responses share one fragments preamble:
        # marshal all call results together so identity is preserved
        # across bulk calls (the Bulk RPC guarantee of Section V).
        from repro.xrpc.marshal import marshal_calls as _marshal

        from repro.paths.analysis import PathSets
        from repro.paths.relpath import parse_rel_path

        param_paths = None
        semantics = self.semantics
        if semantics == "by-projection":
            if request.used_paths is None and request.returned_paths is None:
                # No projection paths: respond in by-fragment format
                # ("the absence or presence of this element determines
                # whether the response should be in the original ...
                # format").
                semantics = "by-fragment"
            else:
                param_paths = {"result": PathSets(
                    used={parse_rel_path(p)
                          for p in request.used_paths or []},
                    returned={parse_rel_path(p)
                              for p in request.returned_paths or []},
                )}
        bundle = _marshal([[("result", result)] for result in results],
                          semantics, param_paths)
        return ResponseMessage(
            results=[call.params[0][1] for call in bundle.calls],
            fragments=bundle.fragments)
