"""Projection path analysis (Section VI-A) over decomposed queries.

The paper annotates every d-graph vertex with absolute used/returned
paths (rules DOC1/DOC2/ROOT/ID plus the FLWOR/step rules of [18]) and
then extracts *relative* paths with ``allSuffixes``. We compute the
relative paths directly by abstract interpretation over the AST: an
abstract value is a set of ``(source, RelPath)`` pairs, where a source
is either an XRPC parameter (request projection) or an XRPC result
(response projection). Uses in value-level positions mark paths *used*;
values that escape into results, constructors, or onward messages mark
them *returned*. Anything the analysis cannot model precisely falls
back to marking *returned* — the safe direction, since returned nodes
keep their descendants (over-shipping is a performance bug, dropping a
needed node would be a correctness bug).

The per-expression precision matches the paper's rules:

* steps extend the path (including reverse/horizontal axes — the
  Section VI extension over [18]);
* ``fn:root`` appends the ``root()`` pseudo-step (rule ROOT);
* ``fn:id``/``fn:idref`` append ``id()``/``idref()`` and mark their
  string arguments used (rule ID ignores the first parameter "as it
  contains string values");
* ``fn:doc`` starts a fresh source (rules DOC1/DOC2).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.paths.relpath import RelPath, RelStep
from repro.xquery.ast import (
    ArithmeticExpr, ComparisonExpr, ConstructorExpr, ContextItemExpr,
    EmptySequence, Expr, ForExpr, FunCall, IfExpr, LetExpr, Literal,
    LogicalExpr, Module, NodeSetExpr, OrderByExpr, PathExpr, QuantifiedExpr,
    RangeExpr, SequenceExpr, TypeswitchExpr, UnaryExpr, VarRef, XRPCExpr,
    walk,
)

Source = tuple[str, object]  # ("param", name) | ("xrpc", id(expr))
Abstract = frozenset[tuple[Source, RelPath]]

_EMPTY: Abstract = frozenset()


@dataclass
class PathSets:
    """Used and returned relative paths for one source."""

    used: set[RelPath] = field(default_factory=set)
    returned: set[RelPath] = field(default_factory=set)

    def is_empty(self) -> bool:
        return not self.used and not self.returned


@dataclass
class ProjectionSpec:
    """Projection info for one XRPCExpr: per-parameter request paths
    (``Urel/Rrel(vparam)``) and result response paths
    (``Urel/Rrel(vxrpc)``)."""

    param_paths: dict[str, PathSets] = field(default_factory=dict)
    result_paths: PathSets = field(default_factory=PathSets)


#: Builtins that pass their argument nodes through unchanged (public:
#: the planner's estimator shares this classification).
TRANSPARENT_BUILTINS = frozenset({
    "reverse", "subsequence", "insert-before", "remove", "exactly-one",
    "zero-or-one", "one-or-more", "unordered",
})

#: Builtins that only atomize / inspect their arguments (public: the
#: planner's estimator shares this classification).
VALUE_BUILTINS = frozenset({
    "data", "string", "number", "not", "boolean", "empty", "exists",
    "count", "sum", "avg", "max", "min", "concat", "string-join",
    "contains", "starts-with", "ends-with", "substring",
    "substring-before", "substring-after", "normalize-space",
    "upper-case", "lower-case", "string-length", "translate",
    "distinct-values", "index-of", "deep-equal", "local-name", "name",
    "base-uri", "xrpc:base-uri", "document-uri", "xrpc:document-uri",
})


class _Analyzer:
    def __init__(self, module: Module, marks: dict[Source, PathSets],
                 xrpc_sources: bool):
        self.module = module
        self.marks = marks
        self.xrpc_sources = xrpc_sources
        self._inlining: list[tuple[str, int]] = []

    # -- marking -----------------------------------------------------------

    def _sets_for(self, source: Source) -> PathSets:
        sets = self.marks.get(source)
        if sets is None:
            sets = PathSets()
            self.marks[source] = sets
        return sets

    def mark_used(self, abstract: Abstract) -> None:
        """Value-level use: keep the nodes *and* their text content.

        Algorithm 1 keeps a used node without its descendants, but a
        value comparison atomizes the node — which concatenates its
        descendant text. Marking ``descendant::text()`` as used as well
        keeps exactly the characters atomization needs (attribute nodes
        carry their value inherently and need no extra path).
        """
        for source, path in abstract:
            sets = self._sets_for(source)
            sets.used.add(path)
            sets.used.add(path.extend(RelStep("descendant", "text()")))

    def mark_returned(self, abstract: Abstract) -> None:
        for source, path in abstract:
            self._sets_for(source).returned.add(path)

    # -- interpretation ------------------------------------------------------

    def analyze(self, expr: Expr, env: dict[str, Abstract]) -> Abstract:
        if isinstance(expr, (Literal, EmptySequence)):
            return _EMPTY
        if isinstance(expr, VarRef):
            return env.get(expr.name, _EMPTY)
        if isinstance(expr, ContextItemExpr):
            return env.get(".", _EMPTY)
        if isinstance(expr, SequenceExpr):
            out: set = set()
            for item in expr.items:
                out |= self.analyze(item, env)
            return frozenset(out)
        if isinstance(expr, LetExpr):
            value = self.analyze(expr.value, env)
            return self.analyze(expr.body, {**env, expr.var: value})
        if isinstance(expr, ForExpr):
            seq = self.analyze(expr.seq, env)
            body_env = {**env, expr.var: seq}
            if expr.pos_var is not None:
                body_env[expr.pos_var] = _EMPTY
            return self.analyze(expr.body, body_env)
        if isinstance(expr, IfExpr):
            self.mark_used(self.analyze(expr.cond, env))
            return (self.analyze(expr.then_branch, env)
                    | self.analyze(expr.else_branch, env))
        if isinstance(expr, QuantifiedExpr):
            seq = self.analyze(expr.seq, env)
            self.mark_used(self.analyze(expr.cond, {**env, expr.var: seq}))
            return _EMPTY
        if isinstance(expr, OrderByExpr):
            seq = self.analyze(expr.seq, env)
            inner = {**env, expr.var: seq}
            for spec in expr.specs:
                self.mark_used(self.analyze(spec.key, inner))
            return self.analyze(expr.body, inner)
        if isinstance(expr, TypeswitchExpr):
            operand = self.analyze(expr.operand, env)
            self.mark_used(operand)
            out: set = set()
            for case in expr.cases:
                case_env = {**env, case.var: operand} if case.var else env
                out |= self.analyze(case.body, case_env)
            default_env = ({**env, expr.default_var: operand}
                           if expr.default_var else env)
            out |= self.analyze(expr.default_body, default_env)
            return frozenset(out)
        if isinstance(expr, (ComparisonExpr, ArithmeticExpr, LogicalExpr)):
            self.mark_used(self.analyze(expr.left, env))
            self.mark_used(self.analyze(expr.right, env))
            return _EMPTY
        if isinstance(expr, UnaryExpr):
            self.mark_used(self.analyze(expr.operand, env))
            return _EMPTY
        if isinstance(expr, RangeExpr):
            self.mark_used(self.analyze(expr.start, env))
            self.mark_used(self.analyze(expr.end, env))
            return _EMPTY
        if isinstance(expr, NodeSetExpr):
            return (self.analyze(expr.left, env)
                    | self.analyze(expr.right, env))
        if isinstance(expr, PathExpr):
            return self._analyze_path(expr, env)
        if isinstance(expr, ConstructorExpr):
            if expr.name_expr is not None:
                self.mark_used(self.analyze(expr.name_expr, env))
            if expr.content is not None:
                # Content is copied into the constructed tree: the
                # copies include descendants, so the inputs are
                # "returned" in the projection sense.
                self.mark_returned(self.analyze(expr.content, env))
            return _EMPTY
        if isinstance(expr, FunCall):
            return self._analyze_funcall(expr, env)
        if isinstance(expr, XRPCExpr):
            self.mark_used(self.analyze(expr.dest, env))
            for param in expr.params:
                # Shipped onward: full subtrees needed.
                self.mark_returned(self.analyze(param.value, env))
            if self.xrpc_sources:
                return frozenset({(("xrpc", id(expr)), RelPath())})
            return _EMPTY
        # Unknown expression kind: be safe.
        for child in expr.child_exprs():  # pragma: no cover
            self.mark_returned(self.analyze(child, env))
        return _EMPTY  # pragma: no cover

    def _analyze_path(self, expr: PathExpr, env: dict[str, Abstract]) -> Abstract:
        current = self.analyze(expr.input, env)
        for step in expr.steps:
            current = frozenset(
                (source, path.extend(RelStep(step.axis, step.test)))
                for source, path in current)
            for predicate in step.predicates:
                pred_env = {**env, ".": current}
                self.mark_used(self.analyze(predicate, pred_env))
                # The context nodes themselves are inspected by the
                # predicate (existence / position): mark used.
                self.mark_used(current)
        return current

    def _analyze_funcall(self, expr: FunCall, env: dict[str, Abstract]) -> Abstract:
        name, arity = expr.name, len(expr.args)
        decl = self.module.function(name, arity)
        if decl is not None and (name, arity) not in self._inlining:
            args = [self.analyze(arg, env) for arg in expr.args]
            body_env = {param.name: abstract
                        for param, abstract in zip(decl.params, args)}
            self._inlining.append((name, arity))
            try:
                return self.analyze(decl.body, body_env)
            finally:
                self._inlining.pop()

        if name == "doc" or name == "collection":
            for arg in expr.args:
                self.mark_used(self.analyze(arg, env))
            return _EMPTY
        if name == "root" and arity == 1:
            inner = self.analyze(expr.args[0], env)
            return frozenset((source, path.extend(RelStep("root()")))
                             for source, path in inner)
        if name in ("id", "idref") and arity == 2:
            self.mark_used(self.analyze(expr.args[0], env))
            inner = self.analyze(expr.args[1], env)
            return frozenset(
                (source, path.extend(RelStep(f"{name}()")))
                for source, path in inner)
        if name in TRANSPARENT_BUILTINS:
            out: set = set()
            for arg in expr.args:
                out |= self.analyze(arg, env)
            return frozenset(out)
        if name in VALUE_BUILTINS:
            for arg in expr.args:
                self.mark_used(self.analyze(arg, env))
            return _EMPTY
        # Unknown function (including recursion): conservative.
        for arg in expr.args:
            self.mark_returned(self.analyze(arg, env))
        return _EMPTY


def analyze_module(module: Module) -> dict[int, ProjectionSpec]:
    """Compute a :class:`ProjectionSpec` for every XRPCExpr in a
    decomposed module, keyed by ``id(xrpc_expr)``."""
    specs: dict[int, ProjectionSpec] = {}
    xrpcs = [node for node in _all_exprs(module)
             if isinstance(node, XRPCExpr)]
    if not xrpcs:
        return specs

    # Outer pass: result paths (how callers consume each XRPC result).
    outer_marks: dict[Source, PathSets] = {}
    outer = _Analyzer(module, outer_marks, xrpc_sources=True)
    result_abstract = outer.analyze(module.body, {})
    outer.mark_returned(result_abstract)  # the query result escapes

    for xrpc in xrpcs:
        spec = ProjectionSpec()
        spec.result_paths = outer_marks.get(("xrpc", id(xrpc)), PathSets())

        # Inner pass: how the body consumes each parameter.
        inner_marks: dict[Source, PathSets] = {}
        inner = _Analyzer(module, inner_marks, xrpc_sources=False)
        body_env = {
            param.name: frozenset({(("param", param.name), RelPath())})
            for param in xrpc.params
        }
        body_abstract = inner.analyze(xrpc.body, body_env)
        inner.mark_returned(body_abstract)  # the function result escapes
        for param in xrpc.params:
            spec.param_paths[param.name] = inner_marks.get(
                ("param", param.name), PathSets())
        specs[id(xrpc)] = spec
    return specs


def _all_exprs(module: Module):
    for decl in module.functions:
        yield from walk(decl.body)
    yield from walk(module.body)


def evaluate_rel_paths(paths: set[RelPath], context: list) -> list:
    """Evaluate a set of relative paths against a runtime context
    sequence, uniting the results (the union() cascade of Section
    VI-B)."""
    from repro.xmldb.compare import sort_document_order
    from repro.xmldb.node import Node

    nodes = [item for item in context if isinstance(item, Node)]
    out: list[Node] = []
    for path in paths:
        out.extend(path.evaluate(nodes))
    return sort_document_order(out)
