"""Projection paths (Table V) and the path analysis of Section VI-A.

This package derives, for every ``XRPCExpr`` in a decomposed query:

* per-parameter *relative* used/returned paths
  (``Urel(vparam)``/``Rrel(vparam)``) — evaluated against the actual
  parameter values at call time to drive request-message projection;
* result used/returned paths (``Urel(vxrpc)``/``Rrel(vxrpc)``) — sent
  inside the request's ``projection-paths`` element so the remote peer
  can project the response.
"""

from repro.paths.relpath import RelPath, RelStep, parse_rel_path
from repro.paths.analysis import (
    ProjectionSpec, PathSets, analyze_module, evaluate_rel_paths,
)

__all__ = [
    "RelPath", "RelStep", "parse_rel_path",
    "ProjectionSpec", "PathSets", "analyze_module", "evaluate_rel_paths",
]
