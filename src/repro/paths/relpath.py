"""Relative projection paths: the Table V grammar, minus the doc()
prefix (relative paths start at a runtime context sequence, per the
``allSuffixes`` construction of Section VI-B).

A :class:`RelPath` is a sequence of :class:`RelStep`; a step is either
a plain axis step (any of the 13 axes — the paper's extension beyond
[18]) or one of the pseudo-steps ``root()`` / ``id()`` / ``idref()``.
Paths serialise to compact strings for the message's
``projection-paths`` element and parse back on the remote side.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import XrpcMarshalError
from repro.xmldb import axes as axes_mod
from repro.xmldb.compare import sort_document_order
from repro.xmldb.node import Node

#: Pseudo-steps for the built-ins of Problem 5 Classes 3-4.
PSEUDO_STEPS = ("root()", "id()", "idref()")


@dataclass(frozen=True)
class RelStep:
    """One step: ``axis::test`` or a pseudo-step (axis == the marker)."""

    axis: str
    test: str = "node()"

    def __str__(self) -> str:
        if self.axis in PSEUDO_STEPS:
            return self.axis
        return f"{self.axis}::{self.test}"


@dataclass(frozen=True)
class RelPath:
    """A relative projection path (possibly empty = ``self``)."""

    steps: tuple[RelStep, ...] = ()

    def extend(self, step: RelStep) -> "RelPath":
        return RelPath(self.steps + (step,))

    def __str__(self) -> str:
        if not self.steps:
            return "self::node()"
        return "/".join(str(step) for step in self.steps)

    def evaluate(self, context: list[Node]) -> list[Node]:
        """Apply the path to a context sequence using the engine's
        normal axis machinery ("our runtime approach for projection
        simply relies on the normal XPATH evaluation capabilities")."""
        current = [n for n in context if isinstance(n, Node)]
        for step in self.steps:
            gathered: list[Node] = []
            if step.axis == "root()":
                gathered = [node.root() for node in current]
            elif step.axis == "id()":
                for node in current:
                    gathered.extend(_all_id_elements(node))
            elif step.axis == "idref()":
                for node in current:
                    gathered.extend(_all_idref_elements(node))
            else:
                for node in current:
                    gathered.extend(
                        axes_mod.axis_step(node, step.axis, step.test))
            current = sort_document_order(gathered)
        return current


def _all_id_elements(node: Node) -> list[Node]:
    """The loading-algorithm consequence the paper states: without
    knowing the ID values (they are strings, not nodes), conserve all
    elements carrying an ID attribute."""
    doc = node.doc
    if doc._id_index is None:  # noqa: SLF001 - intentional internal use
        doc._build_id_indexes()
    assert doc._id_index is not None
    return [Node(doc, pre) for pre in doc._id_index.values()]


def _all_idref_elements(node: Node) -> list[Node]:
    doc = node.doc
    if doc._idref_index is None:  # noqa: SLF001
        doc._build_id_indexes()
    assert doc._idref_index is not None
    out: list[Node] = []
    for pres in doc._idref_index.values():
        out.extend(Node(doc, pre) for pre in pres)
    return out


def parse_rel_path(text: str) -> RelPath:
    """Parse the compact string form back into a :class:`RelPath`."""
    text = text.strip()
    if not text or text == "self::node()":
        return RelPath()
    steps: list[RelStep] = []
    for part in text.split("/"):
        part = part.strip()
        if part in PSEUDO_STEPS:
            steps.append(RelStep(part))
            continue
        if "::" not in part:
            raise XrpcMarshalError(f"malformed projection path step {part!r}")
        axis, test = part.split("::", 1)
        if axis not in axes_mod.AXES:
            raise XrpcMarshalError(f"unknown axis {axis!r} in path {text!r}")
        steps.append(RelStep(axis, test))
    return RelPath(tuple(steps))
