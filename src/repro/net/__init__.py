"""Deterministic network and cost simulation.

The paper's testbed (three Athlon64 machines on 1 Gb/s Ethernet) is
replaced by byte-accurate message accounting plus a calibrated cost
model, giving the five-way time breakdown of Figure 8: document
shredding, local execution, message (de)serialisation, remote
execution, and network transfer.
"""

from repro.net.costmodel import CostModel
from repro.net.estimate import CostVector
from repro.net.stats import PlanReport, RunStats, TimeBreakdown

__all__ = ["CostModel", "CostVector", "PlanReport", "RunStats",
           "TimeBreakdown"]
