"""The calibrated cost model converting counters into simulated time.

Constants are calibrated to the paper's platform (Section VII): 1 Gb/s
Ethernet between 2 GHz machines, where document shredding dominates
data shipping (">99% of total execution time" for the pure
data-shipping query) and per-message overhead is sub-millisecond. Only
*relative* behaviour matters for reproducing Figures 7-9; the defaults
keep the paper's orderings:

* shredding a byte costs more than serialising one (parsing plus index
  construction vs. a formatting pass);
* the network moves bytes at 1 Gb/s with a fixed per-message latency;
* execution time scales with evaluator ticks and nodes visited.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class CostModel:
    """Simulated costs; all times in seconds."""

    #: Per-message fixed cost (connection + SOAP envelope handling).
    latency_s: float = 0.3e-3
    #: Wire speed: 1 Gb/s = 125 MB/s.
    bandwidth_bytes_per_s: float = 125e6
    #: Shredding received documents into the XML store.
    shred_s_per_byte: float = 60e-9
    #: Serialising XML (documents or messages) to text.
    serialize_s_per_byte: float = 15e-9
    #: Parsing + shredding message payloads on receipt.
    deserialize_s_per_byte: float = 40e-9
    #: One evaluator expression-evaluation step.
    tick_s: float = 0.4e-6
    #: One axis candidate visited.
    node_visit_s: float = 0.1e-6

    def network_time(self, message_bytes: int) -> float:
        return self.latency_s + message_bytes / self.bandwidth_bytes_per_s

    def shred_time(self, document_bytes: int) -> float:
        return document_bytes * self.shred_s_per_byte

    def serialize_time(self, message_bytes: int) -> float:
        return message_bytes * self.serialize_s_per_byte

    def deserialize_time(self, message_bytes: int) -> float:
        return message_bytes * self.deserialize_s_per_byte

    def exec_time(self, ticks: int, nodes_visited: int) -> float:
        return ticks * self.tick_s + nodes_visited * self.node_visit_s
