"""The calibrated cost model converting counters into simulated time.

Constants are calibrated to the paper's platform (Section VII): 1 Gb/s
Ethernet between 2 GHz machines, where document shredding dominates
data shipping (">99% of total execution time" for the pure
data-shipping query) and per-message overhead is sub-millisecond. Only
*relative* behaviour matters for reproducing Figures 7-9; the defaults
keep the paper's orderings:

* shredding a byte costs more than serialising one (parsing plus index
  construction vs. a formatting pass);
* the network moves bytes at 1 Gb/s with a fixed per-message latency;
* execution time scales with evaluator ticks and nodes visited.

Every constant is a rate with explicit units (seconds, or seconds per
byte/tick/node-visit); derive a variant with :meth:`CostModel.replace`
instead of constructing ad-hoc instances.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass


@dataclass(frozen=True)
class CostModel:
    """Simulated costs; all times in seconds."""

    #: Per-message fixed cost in **seconds** (TCP connection reuse plus
    #: SOAP envelope handling; the paper's LAN sees ~0.3 ms).
    latency_s: float = 0.3e-3
    #: Wire speed in **bytes per second**: 1 Gb/s = 125 MB/s.
    bandwidth_bytes_per_s: float = 125e6
    #: **Seconds per byte** to shred a received document into the XML
    #: store (parsing plus pre/size/level index construction).
    shred_s_per_byte: float = 60e-9
    #: **Seconds per byte** to serialise XML (documents or messages) to
    #: text (a formatting pass, cheaper than shredding).
    serialize_s_per_byte: float = 15e-9
    #: **Seconds per byte** to parse + shred message payloads on
    #: receipt (between serialisation and full document shredding:
    #: fragments skip part of the index work).
    deserialize_s_per_byte: float = 40e-9
    #: **Seconds per evaluator tick** (one expression-evaluation step).
    tick_s: float = 0.4e-6
    #: **Seconds per node visit** (one axis candidate inspected).
    node_visit_s: float = 0.1e-6

    def replace(self, **overrides: float) -> "CostModel":
        """A copy with ``overrides`` applied — the supported way for
        benchmarks and experiments to derive variants (a typo'd field
        name raises, listing the valid ones)."""
        valid = {field.name for field in dataclasses.fields(self)}
        unknown = set(overrides) - valid
        if unknown:
            raise TypeError(
                f"unknown CostModel field(s) {sorted(unknown)}; "
                f"valid fields: {sorted(valid)}")
        return dataclasses.replace(self, **overrides)

    def network_time(self, message_bytes: int) -> float:
        return self.latency_s + message_bytes / self.bandwidth_bytes_per_s

    def shred_time(self, document_bytes: int) -> float:
        return document_bytes * self.shred_s_per_byte

    def serialize_time(self, message_bytes: int) -> float:
        return message_bytes * self.serialize_s_per_byte

    def deserialize_time(self, message_bytes: int) -> float:
        return message_bytes * self.deserialize_s_per_byte

    def exec_time(self, ticks: int, nodes_visited: int) -> float:
        return ticks * self.tick_s + nodes_visited * self.node_visit_s
