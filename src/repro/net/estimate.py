"""Cost-vector arithmetic: the estimation side of the cost model.

A :class:`CostVector` is the *predicted* counterpart of
:class:`~repro.net.stats.RunStats`: raw byte/message/exec quantities a
planner expects an execution to incur, before any of it happens. It is
priced into a :class:`~repro.net.stats.TimeBreakdown` with the same
:class:`~repro.net.costmodel.CostModel` arithmetic the transport uses
to charge actual runs, so estimates and observations are directly
comparable — the planner's feedback loop is a division of the two.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.net.costmodel import CostModel
from repro.net.stats import TimeBreakdown


@dataclass
class CostVector:
    """Predicted raw quantities for one (partial) execution.

    Byte fields mirror how the transport charges a run: message bytes
    are serialised once and deserialised once per direction; shipped
    documents are serialised at the owner and shredded at the
    requester; execution seconds are carried directly (the estimator
    already multiplied element counts by per-element rates).
    """

    document_bytes: float = 0.0   # whole documents on the wire
    message_bytes: float = 0.0    # request + response message text
    messages: float = 0.0         # individual message transmissions
    local_exec_s: float = 0.0
    remote_exec_s: float = 0.0
    #: Extra queueing delay in seconds (replica in-flight pressure).
    queue_s: float = 0.0

    def add(self, other: "CostVector") -> "CostVector":
        """Accumulate ``other`` into this vector (returns self)."""
        self.document_bytes += other.document_bytes
        self.message_bytes += other.message_bytes
        self.messages += other.messages
        self.local_exec_s += other.local_exec_s
        self.remote_exec_s += other.remote_exec_s
        self.queue_s += other.queue_s
        return self

    @property
    def wire_bytes(self) -> float:
        """Figure 7's metric, predicted: documents + messages."""
        return self.document_bytes + self.message_bytes

    def time(self, model: CostModel) -> TimeBreakdown:
        """Price the vector with ``model`` — the same arithmetic
        :class:`~repro.runtime.transport.Transport` applies when
        charging real exchanges and document fetches."""
        times = TimeBreakdown()
        times.network = (self.messages * model.latency_s
                         + self.wire_bytes / model.bandwidth_bytes_per_s
                         + self.queue_s)
        times.serialize = (
            self.message_bytes * (model.serialize_s_per_byte
                                  + model.deserialize_s_per_byte)
            + self.document_bytes * model.serialize_s_per_byte)
        times.shred = self.document_bytes * model.shred_s_per_byte
        times.local_exec = self.local_exec_s
        times.remote_exec = self.remote_exec_s
        return times

    def total_s(self, model: CostModel) -> float:
        """Predicted simulated seconds, all components."""
        return self.time(model).total
