"""Run statistics: the measurements behind Figures 7-9.

:class:`RunStats` accumulates bytes and simulated time per category
during one federated query execution. ``total_transferred_bytes`` is
Figure 7's y-axis ("total size of XML documents plus total size of XML
messages transferred among peers"); :class:`TimeBreakdown` is the
five-component stack of Figure 8.

Observability hooks: a run traced via ``Federation.run(trace=True)``
binds the active :class:`~repro.obs.trace.Span` to ``RunStats.span``,
and every site that charges simulated time into :attr:`times` charges
the same amount into that span — so the trace's component leaves sum
to these totals by construction. ``per_shard`` keeps the cluster
router's private per-shard accounting (bytes, messages, skips,
failovers) that a plain :meth:`merge` would otherwise flatten away.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.obs.explain import PlanAnalysis, render_analysis


@dataclass
class TimeBreakdown:
    """Simulated seconds per category (Figure 8's stack)."""

    shred: float = 0.0
    local_exec: float = 0.0
    serialize: float = 0.0   # "(de)serialize" in the paper
    remote_exec: float = 0.0
    network: float = 0.0

    @property
    def total(self) -> float:
        return (self.shred + self.local_exec + self.serialize
                + self.remote_exec + self.network)

    def as_dict(self) -> dict[str, float]:
        return {
            "shred": self.shred,
            "local exec": self.local_exec,
            "(de)serialize": self.serialize,
            "remote exec": self.remote_exec,
            "network": self.network,
        }

    def components(self) -> dict[str, float]:
        """The same numbers keyed by the span-component names used by
        :mod:`repro.obs.trace` (``Span.component_totals()`` parity)."""
        return {
            "shred": self.shred,
            "local_exec": self.local_exec,
            "serialize": self.serialize,
            "remote_exec": self.remote_exec,
            "network": self.network,
        }


@dataclass(frozen=True)
class PlanReport:
    """The planner's verdict for one run: which physical plan executed
    and what it was predicted to cost.

    Attached to :class:`RunStats` for *every* run — fixed strategies
    get the trivial single-candidate report — so estimated-vs-actual
    tables (``BENCH_planner.json``) need nothing but the stats object.
    After execution the federation attaches a per-operator
    :class:`~repro.obs.explain.PlanAnalysis`; :meth:`explain` with
    ``analyze=True`` renders it.
    """

    strategy: str                 # chosen plan label, e.g. "by-projection"
    estimated_s: float = 0.0      # predicted simulated seconds
    estimated_bytes: int = 0      # predicted wire bytes (Figure 7 metric)
    from_cache: bool = False      # served by the plan cache
    #: Every candidate the planner priced: ``(label, estimated_s)``,
    #: cheapest first. Fixed-strategy runs carry just their own entry.
    candidates: tuple[tuple[str, float], ...] = ()
    explain_text: str = ""        # operator-level plan rendering
    #: Per-operator estimated-vs-actual rows, attached after the run.
    analysis: PlanAnalysis | None = None

    def explain(self, analyze: bool = False) -> str:
        """The operator-level plan rendering; with ``analyze=True``,
        each operator's *actual* bytes/seconds/cardinality next to the
        estimator's prediction (falls back to the estimate-only text
        when no actuals were recorded)."""
        if analyze and self.analysis is not None:
            return render_analysis(self.analysis)
        if analyze:
            return self.explain_text + "\n  (no actuals recorded)"
        return self.explain_text

    def as_dict(self) -> dict[str, object]:
        out: dict[str, object] = {
            "strategy": self.strategy,
            "estimated_s": self.estimated_s,
            "estimated_bytes": self.estimated_bytes,
            "from_cache": self.from_cache,
            "candidates": [list(entry) for entry in self.candidates],
        }
        if self.analysis is not None:
            out["analysis"] = self.analysis.as_dict()
        return out


def merge_shard_breakdown(target: dict[str, dict], key: str,
                          entry: dict) -> None:
    """Fold one shard's sub-breakdown into ``target[key]`` (numeric
    fields add; booleans OR)."""
    existing = target.get(key)
    if existing is None:
        target[key] = dict(entry)
        return
    for name, value in entry.items():
        if isinstance(value, bool):
            existing[name] = existing.get(name, False) or value
        else:
            existing[name] = existing.get(name, 0) + value


@dataclass
class RunStats:
    """Byte and message accounting for one query execution."""

    document_bytes: int = 0      # full documents shipped (data shipping)
    message_bytes: int = 0       # SOAP request + response messages
    messages: int = 0            # network interactions (message count)
    rpc_calls: int = 0           # function applications (bulk counts >1)
    documents_shipped: int = 0
    cache_hits: int = 0          # round trips / shipments served from
    cache_saved_bytes: int = 0   # the runtime's shared result cache
    scatter_shards: int = 0      # per-shard calls issued by the cluster
    shards_skipped: int = 0      # scatter calls avoided by value-index
                                 # probes proving the shard empty
    failovers: int = 0           # replica switches after wire faults
    retries: int = 0             # same-replica retries of transient faults
    partial_shards: int = 0      # shards absent from the answer under
                                 # the partial="allow" degradation policy
    times: TimeBreakdown = field(default_factory=TimeBreakdown)
    #: The physical plan that produced this run (set by the federation
    #: for every execution; ``merge`` keeps the receiver's — shard
    #: calls report under the run that scattered them).
    plan: PlanReport | None = None
    #: Per-shard sub-breakdown (``"collection#sN"`` → bytes/messages/
    #: skips/failovers/sim seconds), kept through :meth:`merge` so the
    #: router's private shard accounting stays attributable.
    per_shard: dict[str, dict] = field(default_factory=dict)
    #: The trace span charges against these stats attribute to (bound
    #: by the run layer while tracing; never merged, never exported).
    span: object | None = field(default=None, repr=False, compare=False)

    @property
    def total_transferred_bytes(self) -> int:
        """Figure 7's metric: documents + messages over the wire."""
        return self.document_bytes + self.message_bytes

    def record_document_shipped(self, size: int) -> None:
        self.document_bytes += size
        self.documents_shipped += 1

    def record_message(self, size: int) -> None:
        self.message_bytes += size
        self.messages += 1

    def charge_span(self, component: str, seconds: float,
                    nbytes: int = 0) -> None:
        """Mirror a simulated-time charge onto the bound trace span
        (no-op — one attribute check — when tracing is off)."""
        if self.span is not None:
            self.span.charge(component, seconds, nbytes)

    def merge(self, other: "RunStats") -> None:
        """Fold another accounting into this one (the cluster router
        gives each scattered shard call a private RunStats and merges
        them in shard order, keeping totals deterministic under
        concurrency). The receiver keeps its own ``plan`` and ``span``;
        ``per_shard`` sub-breakdowns accumulate by shard identity."""
        self.document_bytes += other.document_bytes
        self.message_bytes += other.message_bytes
        self.messages += other.messages
        self.rpc_calls += other.rpc_calls
        self.documents_shipped += other.documents_shipped
        self.cache_hits += other.cache_hits
        self.cache_saved_bytes += other.cache_saved_bytes
        self.scatter_shards += other.scatter_shards
        self.shards_skipped += other.shards_skipped
        self.failovers += other.failovers
        self.retries += other.retries
        self.partial_shards += other.partial_shards
        self.times.shred += other.times.shred
        self.times.local_exec += other.times.local_exec
        self.times.serialize += other.times.serialize
        self.times.remote_exec += other.times.remote_exec
        self.times.network += other.times.network
        for key, entry in other.per_shard.items():
            merge_shard_breakdown(self.per_shard, key, entry)

    def summary(self) -> dict[str, object]:
        out: dict[str, object] = {
            "total_transferred_bytes": self.total_transferred_bytes,
            "document_bytes": self.document_bytes,
            "message_bytes": self.message_bytes,
            "messages": self.messages,
            "rpc_calls": self.rpc_calls,
            "documents_shipped": self.documents_shipped,
            "cache_hits": self.cache_hits,
            "cache_saved_bytes": self.cache_saved_bytes,
            "scatter_shards": self.scatter_shards,
            "shards_skipped": self.shards_skipped,
            "failovers": self.failovers,
            "retries": self.retries,
            "partial_shards": self.partial_shards,
            "total_time_s": self.times.total,
            "times": self.times.as_dict(),
            "plan": self.plan.as_dict() if self.plan is not None else None,
        }
        if self.per_shard:
            out["per_shard"] = {key: dict(entry)
                                for key, entry in
                                sorted(self.per_shard.items())}
        return out
