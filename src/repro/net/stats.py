"""Run statistics: the measurements behind Figures 7-9.

:class:`RunStats` accumulates bytes and simulated time per category
during one federated query execution. ``total_transferred_bytes`` is
Figure 7's y-axis ("total size of XML documents plus total size of XML
messages transferred among peers"); :class:`TimeBreakdown` is the
five-component stack of Figure 8.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class TimeBreakdown:
    """Simulated seconds per category (Figure 8's stack)."""

    shred: float = 0.0
    local_exec: float = 0.0
    serialize: float = 0.0   # "(de)serialize" in the paper
    remote_exec: float = 0.0
    network: float = 0.0

    @property
    def total(self) -> float:
        return (self.shred + self.local_exec + self.serialize
                + self.remote_exec + self.network)

    def as_dict(self) -> dict[str, float]:
        return {
            "shred": self.shred,
            "local exec": self.local_exec,
            "(de)serialize": self.serialize,
            "remote exec": self.remote_exec,
            "network": self.network,
        }


@dataclass(frozen=True)
class PlanReport:
    """The planner's verdict for one run: which physical plan executed
    and what it was predicted to cost.

    Attached to :class:`RunStats` for *every* run — fixed strategies
    get the trivial single-candidate report — so estimated-vs-actual
    tables (``BENCH_planner.json``) need nothing but the stats object.
    """

    strategy: str                 # chosen plan label, e.g. "by-projection"
    estimated_s: float = 0.0      # predicted simulated seconds
    estimated_bytes: int = 0      # predicted wire bytes (Figure 7 metric)
    from_cache: bool = False      # served by the plan cache
    #: Every candidate the planner priced: ``(label, estimated_s)``,
    #: cheapest first. Fixed-strategy runs carry just their own entry.
    candidates: tuple[tuple[str, float], ...] = ()
    explain: str = ""             # operator-level plan rendering

    def as_dict(self) -> dict[str, object]:
        return {
            "strategy": self.strategy,
            "estimated_s": self.estimated_s,
            "estimated_bytes": self.estimated_bytes,
            "from_cache": self.from_cache,
            "candidates": [list(entry) for entry in self.candidates],
        }


@dataclass
class RunStats:
    """Byte and message accounting for one query execution."""

    document_bytes: int = 0      # full documents shipped (data shipping)
    message_bytes: int = 0       # SOAP request + response messages
    messages: int = 0            # network interactions (message count)
    rpc_calls: int = 0           # function applications (bulk counts >1)
    documents_shipped: int = 0
    cache_hits: int = 0          # round trips / shipments served from
    cache_saved_bytes: int = 0   # the runtime's shared result cache
    scatter_shards: int = 0      # per-shard calls issued by the cluster
    shards_skipped: int = 0      # scatter calls avoided by value-index
                                 # probes proving the shard empty
    failovers: int = 0           # replica switches after wire faults
    times: TimeBreakdown = field(default_factory=TimeBreakdown)
    #: The physical plan that produced this run (set by the federation
    #: for every execution; ``merge`` keeps the receiver's — shard
    #: calls report under the run that scattered them).
    plan: PlanReport | None = None

    @property
    def total_transferred_bytes(self) -> int:
        """Figure 7's metric: documents + messages over the wire."""
        return self.document_bytes + self.message_bytes

    def record_document_shipped(self, size: int) -> None:
        self.document_bytes += size
        self.documents_shipped += 1

    def record_message(self, size: int) -> None:
        self.message_bytes += size
        self.messages += 1

    def merge(self, other: "RunStats") -> None:
        """Fold another accounting into this one (the cluster router
        gives each scattered shard call a private RunStats and merges
        them in shard order, keeping totals deterministic under
        concurrency)."""
        self.document_bytes += other.document_bytes
        self.message_bytes += other.message_bytes
        self.messages += other.messages
        self.rpc_calls += other.rpc_calls
        self.documents_shipped += other.documents_shipped
        self.cache_hits += other.cache_hits
        self.cache_saved_bytes += other.cache_saved_bytes
        self.scatter_shards += other.scatter_shards
        self.shards_skipped += other.shards_skipped
        self.failovers += other.failovers
        self.times.shred += other.times.shred
        self.times.local_exec += other.times.local_exec
        self.times.serialize += other.times.serialize
        self.times.remote_exec += other.times.remote_exec
        self.times.network += other.times.network

    def summary(self) -> dict[str, object]:
        return {
            "total_transferred_bytes": self.total_transferred_bytes,
            "document_bytes": self.document_bytes,
            "message_bytes": self.message_bytes,
            "messages": self.messages,
            "rpc_calls": self.rpc_calls,
            "documents_shipped": self.documents_shipped,
            "cache_hits": self.cache_hits,
            "cache_saved_bytes": self.cache_saved_bytes,
            "scatter_shards": self.scatter_shards,
            "shards_skipped": self.shards_skipped,
            "failovers": self.failovers,
            "total_time_s": self.times.total,
            "times": self.times.as_dict(),
            "plan": self.plan.as_dict() if self.plan is not None else None,
        }
