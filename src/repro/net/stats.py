"""Run statistics: the measurements behind Figures 7-9.

:class:`RunStats` accumulates bytes and simulated time per category
during one federated query execution. ``total_transferred_bytes`` is
Figure 7's y-axis ("total size of XML documents plus total size of XML
messages transferred among peers"); :class:`TimeBreakdown` is the
five-component stack of Figure 8.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class TimeBreakdown:
    """Simulated seconds per category (Figure 8's stack)."""

    shred: float = 0.0
    local_exec: float = 0.0
    serialize: float = 0.0   # "(de)serialize" in the paper
    remote_exec: float = 0.0
    network: float = 0.0

    @property
    def total(self) -> float:
        return (self.shred + self.local_exec + self.serialize
                + self.remote_exec + self.network)

    def as_dict(self) -> dict[str, float]:
        return {
            "shred": self.shred,
            "local exec": self.local_exec,
            "(de)serialize": self.serialize,
            "remote exec": self.remote_exec,
            "network": self.network,
        }


@dataclass
class RunStats:
    """Byte and message accounting for one query execution."""

    document_bytes: int = 0      # full documents shipped (data shipping)
    message_bytes: int = 0       # SOAP request + response messages
    messages: int = 0            # network interactions (message count)
    rpc_calls: int = 0           # function applications (bulk counts >1)
    documents_shipped: int = 0
    cache_hits: int = 0          # round trips / shipments served from
    cache_saved_bytes: int = 0   # the runtime's shared result cache
    times: TimeBreakdown = field(default_factory=TimeBreakdown)

    @property
    def total_transferred_bytes(self) -> int:
        """Figure 7's metric: documents + messages over the wire."""
        return self.document_bytes + self.message_bytes

    def record_document_shipped(self, size: int) -> None:
        self.document_bytes += size
        self.documents_shipped += 1

    def record_message(self, size: int) -> None:
        self.message_bytes += size
        self.messages += 1

    def summary(self) -> dict[str, object]:
        return {
            "total_transferred_bytes": self.total_transferred_bytes,
            "document_bytes": self.document_bytes,
            "message_bytes": self.message_bytes,
            "messages": self.messages,
            "rpc_calls": self.rpc_calls,
            "documents_shipped": self.documents_shipped,
            "cache_hits": self.cache_hits,
            "cache_saved_bytes": self.cache_saved_bytes,
            "total_time_s": self.times.total,
            "times": self.times.as_dict(),
        }
