"""The Section VII benchmark workload, shared by benchmarks, examples
and integration tests.

``BENCHMARK_QUERY`` is the paper's XMark adaptation of Qn2 (with the
``$c/child::seller`` typo corrected to ``$e/...``): find authors of
annotations of auctions sold by persons younger than 40, where the
people and auctions documents live on two different peers.

The multi-tenant generator at the bottom turns this into a concurrent
workload: N clients issue ``BENCHMARK_QUERY`` *variants* (the age
threshold is the tenant's parameter) against the same shared XMark
documents, so repeated thresholds exercise the runtime's result cache
and simultaneous ones its cross-query batcher.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.cluster import ClusterCatalog, create_sharded_collection
from repro.decompose import Strategy
from repro.net.costmodel import CostModel
from repro.net.stats import RunStats
from repro.runtime.engine import FederationEngine
from repro.system.federation import Federation, RunResult
from repro.xmark import generate_pair

#: The benchmark query of Section VII (paper Qn2, XMark-ised).
BENCHMARK_QUERY = """
(let $t := (let $s := doc("xrpc://peer1/people.xml")
                      /child::site/child::people/child::person
            return for $x in $s
                   return if ($x/descendant::age < 40) then $x else ())
 return for $e in (let $c := doc("xrpc://peer2/auctions.xml")
                   return $c/descendant::open_auction)
        return if ($e/child::seller/attribute::person = $t/attribute::id)
               then $e/child::annotation else ())/child::author
"""

#: The per-figure scale sweep. The paper uses XMark factors 0.1-1.6
#: (10-160 MB per document); we keep the same x2 geometric spacing at
#: laptop scale.
DEFAULT_SCALES = (0.005, 0.01, 0.02, 0.04, 0.08)


@dataclass
class WorkloadRun:
    """One strategy's execution over one document pair."""

    strategy: Strategy
    scale: float
    total_document_bytes: int  # combined size of the two source docs
    result: RunResult

    @property
    def stats(self) -> RunStats:
        return self.result.stats


def build_federation(scale: float, seed: int = 20090329,
                     cost_model: CostModel | None = None) -> Federation:
    """Three peers as in the paper's testbed: two data peers plus the
    query originator."""
    people, auctions = generate_pair(
        scale, seed,
        people_uri="xrpc://peer1/people.xml",
        auctions_uri="xrpc://peer2/auctions.xml")
    federation = Federation(cost_model=cost_model)
    federation.add_peer("peer1").store("people.xml", people)
    federation.add_peer("peer2").store("auctions.xml", auctions)
    federation.add_peer("local")
    return federation


def build_spilled_federation(scale: float, directory,
                             seed: int = 20090329,
                             budget_bytes: int | None = None,
                             cost_model: CostModel | None = None
                             ) -> Federation:
    """:func:`build_federation`, but both documents are staged as
    XCOL1 spill files in ``directory`` and served through the mmap
    buffer pool under ``budget_bytes`` (default
    :data:`repro.xmldb.pool.DEFAULT_POOL_BYTES`) — the
    larger-than-memory testbed. Queries, strategies and results are
    identical to the in-memory federation at the same ``(scale,
    seed)``.
    """
    from repro.xmark import spill_pair
    from repro.xmldb.pool import DEFAULT_POOL_BYTES, open_document

    if budget_bytes is None:
        budget_bytes = DEFAULT_POOL_BYTES
    people_path, auctions_path = spill_pair(
        scale, directory, seed,
        people_uri="xrpc://peer1/people.xml",
        auctions_uri="xrpc://peer2/auctions.xml")
    federation = Federation(cost_model=cost_model)
    federation.add_peer("peer1").store(
        "people.xml", open_document(people_path, budget_bytes))
    federation.add_peer("peer2").store(
        "auctions.xml", open_document(auctions_path, budget_bytes))
    federation.add_peer("local")
    return federation


def document_bytes(federation: Federation) -> int:
    """Total serialised size of the two benchmark documents."""
    peer1 = federation.peer("peer1")
    peer2 = federation.peer("peer2")
    return (len(peer1.serialized("people.xml").encode())
            + len(peer2.serialized("auctions.xml").encode()))


def run_strategy(federation: Federation, strategy: Strategy,
                 scale: float = 0.0, query: str = BENCHMARK_QUERY,
                 **kwargs) -> WorkloadRun:
    """Execute the benchmark query under one strategy."""
    result = federation.run(query, at="local", strategy=strategy, **kwargs)
    return WorkloadRun(strategy=strategy, scale=scale,
                       total_document_bytes=document_bytes(federation),
                       result=result)


def run_all_strategies(scale: float, seed: int = 20090329,
                       query: str = BENCHMARK_QUERY,
                       cost_model: CostModel | None = None,
                       **kwargs) -> dict[Strategy, WorkloadRun]:
    """Run all four strategies on one freshly generated document pair.

    One federation is shared (the documents are identical), so results
    are directly comparable; correctness across strategies is asserted
    by the integration tests via deep-equal.
    """
    federation = build_federation(scale, seed, cost_model)
    return {
        strategy: run_strategy(federation, strategy, scale, query, **kwargs)
        for strategy in Strategy
    }


# ---------------------------------------------------------------------------
# Multi-tenant concurrent workload
# ---------------------------------------------------------------------------

#: The tenant parameter pool: a small set of age thresholds, so a
#: multi-round workload repeats thresholds and the result cache earns
#: its hits (the paper's projection wins compound across queries).
TENANT_AGE_THRESHOLDS = (25, 30, 35, 40, 45)


def benchmark_query_variant(max_age: int = 40) -> str:
    """``BENCHMARK_QUERY`` with the tenant's age threshold."""
    anchor = "< 40"
    if anchor not in BENCHMARK_QUERY:
        # Guard against silent template drift: a no-op replace would
        # collapse every tenant onto one threshold without any error.
        raise ValueError(
            f"BENCHMARK_QUERY no longer contains the {anchor!r} anchor")
    return BENCHMARK_QUERY.replace(anchor, f"< {max_age}")


@dataclass(frozen=True)
class TenantJob:
    """One query issued by one client of the multi-tenant workload.

    ``strategy`` may be an enum member, a string alias, or ``"auto"``
    (cost-based planning per query) — whatever
    :meth:`~repro.system.federation.Federation.run` accepts.
    """

    client: int
    round: int
    query: str
    at: str = "local"
    strategy: Strategy | str = Strategy.BY_PROJECTION


def multi_tenant_jobs(clients: int = 8, rounds: int = 2,
                      seed: int = 20090329,
                      strategy: Strategy = Strategy.BY_PROJECTION,
                      at: str = "local",
                      rng: random.Random | None = None,
                      query_variant=benchmark_query_variant
                      ) -> list[TenantJob]:
    """N clients × M rounds of benchmark-query variants.

    Each client draws its threshold per round from
    :data:`TENANT_AGE_THRESHOLDS` with an explicitly seeded
    ``random.Random`` (pass ``rng`` to share one generator across
    several calls; never the process-global ``random``), so a
    benchmark cell's job list is byte-identical run to run. With more
    jobs than thresholds, repeats are guaranteed, which is what makes
    the workload exercise cross-query caching.

    ``query_variant`` maps a threshold to the query text — the sharded
    workload passes :func:`sharded_query_variant` to aim the same
    tenant mix at a cluster.
    """
    if rng is None:
        rng = random.Random(seed)
    return [
        TenantJob(client=client, round=rnd,
                  query=query_variant(rng.choice(TENANT_AGE_THRESHOLDS)),
                  at=at, strategy=strategy)
        for rnd in range(rounds)
        for client in range(clients)
    ]


# ---------------------------------------------------------------------------
# Sharded multi-tenant workload (cluster layer)
# ---------------------------------------------------------------------------

#: Virtual host names of the two benchmark collections.
PEOPLE_COLLECTION = "people-c"
AUCTIONS_COLLECTION = "auctions-c"

def _to_sharded(query: str) -> str:
    """Re-host a benchmark query text onto the sharded collections."""
    return (query
            .replace("xrpc://peer1/people.xml",
                     f"xrpc://{PEOPLE_COLLECTION}/people.xml")
            .replace("xrpc://peer2/auctions.xml",
                     f"xrpc://{AUCTIONS_COLLECTION}/auctions.xml"))


#: ``BENCHMARK_QUERY`` aimed at the sharded collections instead of the
#: two single-owner peers: same query, N× the peers.
SHARDED_BENCHMARK_QUERY = _to_sharded(BENCHMARK_QUERY)


def sharded_query_variant(max_age: int = 40) -> str:
    """``SHARDED_BENCHMARK_QUERY`` with the tenant's age threshold."""
    return _to_sharded(benchmark_query_variant(max_age))


def build_sharded_federation(scale: float, seed: int = 20090329,
                             shard_count: int = 4,
                             replication_factor: int = 2,
                             node_count: int | None = None,
                             partitioning: str = "range",
                             cost_model: CostModel | None = None
                             ) -> Federation:
    """The cluster testbed: the same XMark pair as
    :func:`build_federation`, but sharded over a fleet of data nodes.

    Both documents are partitioned into ``shard_count`` shards placed
    round-robin on ``node_count`` peers (default: one per shard) with
    ``replication_factor`` replicas each, registered in an attached
    :class:`~repro.cluster.catalog.ClusterCatalog`; queries address
    ``xrpc://people-c/people.xml`` / ``xrpc://auctions-c/auctions.xml``
    from the ``local`` originator.
    """
    people, auctions = generate_pair(
        scale, seed,
        people_uri=f"xrpc://{PEOPLE_COLLECTION}/people.xml",
        auctions_uri=f"xrpc://{AUCTIONS_COLLECTION}/auctions.xml")
    federation = Federation(cost_model=cost_model,
                            catalog=ClusterCatalog())
    if node_count is None:
        node_count = shard_count
    nodes = [f"node{index + 1}" for index in range(node_count)]
    for node in nodes:
        federation.add_peer(node)
    federation.add_peer("local")
    create_sharded_collection(
        federation, federation.catalog, name=PEOPLE_COLLECTION,
        document=people, document_name="people.xml",
        container_path=("site", "people"), member="person",
        shard_count=shard_count, replication_factor=replication_factor,
        peers=nodes, partitioning=partitioning)
    create_sharded_collection(
        federation, federation.catalog, name=AUCTIONS_COLLECTION,
        document=auctions, document_name="auctions.xml",
        container_path=("site", "open_auctions"), member="open_auction",
        shard_count=shard_count, replication_factor=replication_factor,
        peers=nodes, partitioning=partitioning)
    return federation


#: A read-heavy tenant scan over the sharded people collection: tiny
#: fixed request, response proportional to the matched members — the
#: workload shape whose wire profile actually shrinks per shard (the
#: semijoin's parameter-carrying requests are duplicated to every
#: shard, so it scatters for capacity, not for message size).
SHARDED_SCAN_QUERY = f"""
for $p in doc("xrpc://{PEOPLE_COLLECTION}/people.xml")
    /child::site/child::people/child::person
return if ($p/child::age < 40) then $p else ()
"""


#: A hot-tenant point lookup: every request matches one person id, so
#: the router's value-index probes prove every other shard empty and
#: skip them — all the served heat lands on the single shard holding
#: that id. This is the skew signal the rebalancer's planner feeds on.
SHARDED_HOT_QUERY = f"""
for $p in doc("xrpc://{PEOPLE_COLLECTION}/people.xml")
    /child::site/child::people/child::person
return if ($p/attribute::id = "person0") then $p/child::name else ()
"""


def sharded_hot_variant(person: int = 0) -> str:
    """``SHARDED_HOT_QUERY`` re-aimed at another person id (a different
    tenant's hot key, possibly on a different shard)."""
    anchor = '"person0"'
    if anchor not in SHARDED_HOT_QUERY:
        raise ValueError(
            f"SHARDED_HOT_QUERY no longer contains the {anchor!r} anchor")
    return SHARDED_HOT_QUERY.replace(anchor, f'"person{person}"')


def sharded_scan_variant(max_age: int = 40) -> str:
    """``SHARDED_SCAN_QUERY`` with the tenant's age threshold."""
    anchor = "< 40"
    if anchor not in SHARDED_SCAN_QUERY:
        raise ValueError(
            f"SHARDED_SCAN_QUERY no longer contains the {anchor!r} anchor")
    return SHARDED_SCAN_QUERY.replace(anchor, f"< {max_age}")


def sharded_scan_jobs(clients: int = 8, rounds: int = 2,
                      seed: int = 20090329,
                      strategy: Strategy = Strategy.BY_FRAGMENT,
                      at: str = "local",
                      rng: random.Random | None = None) -> list[TenantJob]:
    """The tenant mix over :func:`sharded_scan_variant` — the cluster
    benchmark's scaling workload."""
    return multi_tenant_jobs(clients=clients, rounds=rounds, seed=seed,
                             strategy=strategy, at=at, rng=rng,
                             query_variant=sharded_scan_variant)


def sharded_tenant_jobs(clients: int = 8, rounds: int = 2,
                        seed: int = 20090329,
                        strategy: Strategy = Strategy.BY_PROJECTION,
                        at: str = "local",
                        rng: random.Random | None = None
                        ) -> list[TenantJob]:
    """The multi-tenant tenant mix aimed at the sharded collections:
    same thresholds, same seeded draw order as
    :func:`multi_tenant_jobs`, so sharded and single-owner cells of a
    benchmark sweep execute the same logical workload."""
    return multi_tenant_jobs(clients=clients, rounds=rounds, seed=seed,
                             strategy=strategy, at=at, rng=rng,
                             query_variant=sharded_query_variant)


# ---------------------------------------------------------------------------
# Mixed multi-tenant workload (planner benchmark)
# ---------------------------------------------------------------------------

#: The reference-data peer of the mixed workload.
REFDATA_PEER = "refdata"


def refdata_document(entries: int = 40) -> str:
    """A small reference table (currency-rate flavoured): the kind of
    document whose queries the paper's decomposed strategies *lose* on
    — per-message latency dwarfs the bytes saved — so a planner must
    pick data shipping for it while projecting the big documents."""
    rows = "".join(
        f"<entry><code>C{index:02d}</code>"
        f"<rate>{1.0 + index / 17:.4f}</rate>"
        f"<region>r{index % 5}</region></entry>"
        for index in range(entries))
    return f"<rates>{rows}</rates>"


#: Scans the tiny reference table: whole-document shipping beats every
#: decomposed strategy here (one cheap fetch vs. SOAP round trips).
TINY_LOOKUP_QUERY = f"""
for $e in doc("xrpc://{REFDATA_PEER}/rates.xml")/child::rates/child::entry
return if ($e/child::region = "r1") then $e else ()
"""

#: Touches the big people document *and* the tiny reference table: the
#: best plan is mixed — decompose the people call site, ship the
#: reference document — which no single fixed strategy expresses.
MIXED_CROSS_QUERY = f"""
(for $p in doc("xrpc://peer1/people.xml")
           /child::site/child::people/child::person
 return if ($p/descendant::age < 40) then $p/child::name else (),
 doc("xrpc://{REFDATA_PEER}/rates.xml")
     /child::rates/child::entry/child::code)
"""


def build_mixed_federation(scale: float, seed: int = 20090329,
                           refdata_entries: int = 40,
                           cost_model: CostModel | None = None
                           ) -> Federation:
    """:func:`build_federation` plus the :data:`REFDATA_PEER` peer
    holding the small reference table — the testbed whose best
    strategy genuinely differs per query."""
    federation = build_federation(scale, seed, cost_model)
    federation.add_peer(REFDATA_PEER).store(
        "rates.xml", refdata_document(refdata_entries))
    return federation


def mixed_tenant_jobs(clients: int = 6, rounds: int = 2,
                      seed: int = 20090329,
                      strategy: Strategy | str = "auto",
                      at: str = "local",
                      rng: random.Random | None = None) -> list[TenantJob]:
    """The planner benchmark's tenant mix: every round, each client
    draws one of three job shapes — the Section VII semijoin (big
    documents, decomposition wins), the tiny reference lookup (data
    shipping wins), or the cross query (a mixed plan wins). A single
    fixed strategy is wrong for at least one shape, so ``auto`` is the
    only strategy that can win every draw."""
    if rng is None:
        rng = random.Random(seed)
    shapes = ("semijoin", "lookup", "cross")
    jobs: list[TenantJob] = []
    for rnd in range(rounds):
        for client in range(clients):
            shape = rng.choice(shapes)
            if shape == "semijoin":
                query = benchmark_query_variant(
                    rng.choice(TENANT_AGE_THRESHOLDS))
            elif shape == "lookup":
                query = TINY_LOOKUP_QUERY
            else:
                query = MIXED_CROSS_QUERY
            jobs.append(TenantJob(client=client, round=rnd, query=query,
                                  at=at, strategy=strategy))
    return jobs


def run_multi_tenant(federation: Federation, jobs: list[TenantJob],
                     engine: FederationEngine | None = None,
                     **engine_kwargs) -> tuple[list[RunResult],
                                               FederationEngine]:
    """Execute a multi-tenant workload concurrently.

    Returns the per-job results (in job order) plus the engine, whose
    ``metrics`` / ``summary()`` carry the fleet view. A caller-supplied
    ``engine`` is reused (and left running); otherwise one is built
    from ``engine_kwargs`` and shut down before returning.
    """
    own_engine = engine is None
    if engine is None:
        engine = FederationEngine(federation, **engine_kwargs)
    elif engine_kwargs:
        raise ValueError(
            "engine_kwargs are only used when building a new engine; "
            f"got both engine= and {sorted(engine_kwargs)}")
    try:
        results = engine.run_all(
            [(job.query, job.at, job.strategy) for job in jobs])
    finally:
        if own_engine:
            engine.shutdown()
    return results, engine
