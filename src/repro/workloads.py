"""The Section VII benchmark workload, shared by benchmarks, examples
and integration tests.

``BENCHMARK_QUERY`` is the paper's XMark adaptation of Qn2 (with the
``$c/child::seller`` typo corrected to ``$e/...``): find authors of
annotations of auctions sold by persons younger than 40, where the
people and auctions documents live on two different peers.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.decompose import Strategy
from repro.net.costmodel import CostModel
from repro.net.stats import RunStats
from repro.system.federation import Federation, RunResult
from repro.xmark import generate_pair

#: The benchmark query of Section VII (paper Qn2, XMark-ised).
BENCHMARK_QUERY = """
(let $t := (let $s := doc("xrpc://peer1/people.xml")
                      /child::site/child::people/child::person
            return for $x in $s
                   return if ($x/descendant::age < 40) then $x else ())
 return for $e in (let $c := doc("xrpc://peer2/auctions.xml")
                   return $c/descendant::open_auction)
        return if ($e/child::seller/attribute::person = $t/attribute::id)
               then $e/child::annotation else ())/child::author
"""

#: The per-figure scale sweep. The paper uses XMark factors 0.1-1.6
#: (10-160 MB per document); we keep the same x2 geometric spacing at
#: laptop scale.
DEFAULT_SCALES = (0.005, 0.01, 0.02, 0.04, 0.08)


@dataclass
class WorkloadRun:
    """One strategy's execution over one document pair."""

    strategy: Strategy
    scale: float
    total_document_bytes: int  # combined size of the two source docs
    result: RunResult

    @property
    def stats(self) -> RunStats:
        return self.result.stats


def build_federation(scale: float, seed: int = 20090329,
                     cost_model: CostModel | None = None) -> Federation:
    """Three peers as in the paper's testbed: two data peers plus the
    query originator."""
    people, auctions = generate_pair(
        scale, seed,
        people_uri="xrpc://peer1/people.xml",
        auctions_uri="xrpc://peer2/auctions.xml")
    federation = Federation(cost_model=cost_model)
    federation.add_peer("peer1").store("people.xml", people)
    federation.add_peer("peer2").store("auctions.xml", auctions)
    federation.add_peer("local")
    return federation


def document_bytes(federation: Federation) -> int:
    """Total serialised size of the two benchmark documents."""
    peer1 = federation.peer("peer1")
    peer2 = federation.peer("peer2")
    return (len(peer1.serialized("people.xml").encode())
            + len(peer2.serialized("auctions.xml").encode()))


def run_strategy(federation: Federation, strategy: Strategy,
                 scale: float = 0.0, query: str = BENCHMARK_QUERY,
                 **kwargs) -> WorkloadRun:
    """Execute the benchmark query under one strategy."""
    result = federation.run(query, at="local", strategy=strategy, **kwargs)
    return WorkloadRun(strategy=strategy, scale=scale,
                       total_document_bytes=document_bytes(federation),
                       result=result)


def run_all_strategies(scale: float, seed: int = 20090329,
                       query: str = BENCHMARK_QUERY,
                       cost_model: CostModel | None = None,
                       **kwargs) -> dict[Strategy, WorkloadRun]:
    """Run all four strategies on one freshly generated document pair.

    One federation is shared (the documents are identical), so results
    are directly comparable; correctness across strategies is asserted
    by the integration tests via deep-equal.
    """
    federation = build_federation(scale, seed, cost_model)
    return {
        strategy: run_strategy(federation, strategy, scale, query, **kwargs)
        for strategy in Strategy
    }
