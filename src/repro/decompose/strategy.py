"""The decomposition driver tying Sections III-VI together."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.decompose.code_motion import apply_code_motion
from repro.decompose.conditions import valid_decomposition_points
from repro.decompose.points import (
    InsertionPlan, interesting_points, select_insertions,
)
from repro.decompose.rewrite import insert_xrpc
from repro.dgraph.graph import DGraph, build_dgraph
from repro.xquery.ast import Module
from repro.xquery.normalize import normalize


class Strategy(enum.Enum):
    """The four execution strategies of the paper's evaluation."""

    DATA_SHIPPING = "data-shipping"
    BY_VALUE = "by-value"
    BY_FRAGMENT = "by-fragment"
    BY_PROJECTION = "by-projection"

    @property
    def decomposes(self) -> bool:
        return self is not Strategy.DATA_SHIPPING

    @property
    def uses_fragments(self) -> bool:
        return self in (Strategy.BY_FRAGMENT, Strategy.BY_PROJECTION)

    @property
    def uses_projection(self) -> bool:
        return self is Strategy.BY_PROJECTION


@dataclass
class DecompositionResult:
    """Everything the pipeline produced, for inspection and tests."""

    strategy: Strategy
    module: Module                      # the rewritten module
    normalized: Module                  # after let-sinking
    graph: DGraph                       # d-graph of the normalised query
    dpoints: set[int] = field(default_factory=set)       # I(G)
    ipoints: list[int] = field(default_factory=list)     # I'(G)
    plans: list[InsertionPlan] = field(default_factory=list)


def decompose(module: Module, strategy: Strategy,
              local_host: str | None = None,
              code_motion: bool = True,
              let_sinking: bool = True) -> DecompositionResult:
    """Run the full decomposition pipeline for one strategy.

    ``local_host`` is the originator peer's name: interesting points
    whose documents live there are pointless to ship. The
    ``code_motion`` / ``let_sinking`` switches exist for the ablation
    benchmarks; both default to the paper's configuration.
    """
    normalized = normalize(module) if let_sinking else module
    if not strategy.decomposes:
        return DecompositionResult(strategy, normalized, normalized,
                                   build_dgraph(normalized))

    graph = build_dgraph(normalized)
    dpoints = valid_decomposition_points(graph, strategy.value)
    ipoints = interesting_points(graph, dpoints)
    plans = select_insertions(graph, ipoints, local_host)
    rewritten = insert_xrpc(normalized, plans)
    if strategy.uses_fragments and code_motion:
        rewritten = apply_code_motion(rewritten)
    return DecompositionResult(strategy, rewritten, normalized, graph,
                               dpoints, ipoints, plans)
