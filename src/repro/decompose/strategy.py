"""The decomposition driver tying Sections III-VI together."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterable

from repro.decompose.code_motion import apply_code_motion
from repro.decompose.conditions import valid_decomposition_points
from repro.decompose.points import (
    InsertionPlan, interesting_points, select_insertions,
)
from repro.decompose.rewrite import insert_xrpc
from repro.dgraph.graph import DGraph, build_dgraph
from repro.xquery.ast import Module
from repro.xquery.normalize import normalize

#: The planner sentinel: ``Federation.run(strategy="auto")`` lets the
#: cost-based planner pick (and mix) strategies per call site.
AUTO = "auto"


class Strategy(enum.Enum):
    """The four execution strategies of the paper's evaluation."""

    DATA_SHIPPING = "data-shipping"
    BY_VALUE = "by-value"
    BY_FRAGMENT = "by-fragment"
    BY_PROJECTION = "by-projection"

    @property
    def decomposes(self) -> bool:
        return self is not Strategy.DATA_SHIPPING

    @property
    def uses_fragments(self) -> bool:
        return self in (Strategy.BY_FRAGMENT, Strategy.BY_PROJECTION)

    @property
    def uses_projection(self) -> bool:
        return self is Strategy.BY_PROJECTION

    @property
    def semantics(self) -> str:
        """The message semantics a call site under this strategy uses
        on the wire (data shipping has no call sites; its nominal
        semantics is pass-by-value, the W3C default)."""
        if self is Strategy.BY_PROJECTION:
            return "by-projection"
        if self is Strategy.BY_FRAGMENT:
            return "by-fragment"
        return "by-value"

    @classmethod
    def coerce(cls, value: "Strategy | str") -> "Strategy | str":
        """Resolve a strategy given as an enum member or a string.

        Strings are matched case-insensitively against member values
        and names, with ``_``/``-`` interchangeable (``"by-projection"``,
        ``"BY_PROJECTION"``, ``"By-Value"`` all work); ``"auto"`` maps
        to the :data:`AUTO` sentinel. Anything else raises a
        ``ValueError`` listing every valid name.
        """
        if isinstance(value, cls):
            return value
        if isinstance(value, str):
            normalized = value.strip().lower().replace("_", "-")
            if normalized == AUTO:
                return AUTO
            for member in cls:
                if normalized == member.value:
                    return member
        valid = ", ".join([member.value for member in cls] + [AUTO])
        raise ValueError(
            f"unknown strategy {value!r}; valid strategies: {valid}")


def strategy_label(value: "Strategy | str") -> str:
    """The display name of a (possibly string) strategy argument."""
    coerced = Strategy.coerce(value)
    return coerced.value if isinstance(coerced, Strategy) else coerced


@dataclass
class DecompositionResult:
    """Everything the pipeline produced, for inspection and tests."""

    strategy: Strategy
    module: Module                      # the rewritten module
    normalized: Module                  # after let-sinking
    graph: DGraph                       # d-graph of the normalised query
    dpoints: set[int] = field(default_factory=set)       # I(G)
    ipoints: list[int] = field(default_factory=list)     # I'(G)
    plans: list[InsertionPlan] = field(default_factory=list)


@dataclass
class DecompositionCandidates:
    """The per-point candidate set of one strategy's pipeline, before
    any insertion is committed.

    ``plans`` are the insertion points the strategy would realise; the
    cost-based planner prices *subsets* of them (shipping the documents
    of the excluded points instead), so one decomposition run yields a
    whole family of executable candidates via :func:`realize`.
    """

    strategy: Strategy
    normalized: Module
    graph: DGraph
    dpoints: set[int] = field(default_factory=set)
    ipoints: list[int] = field(default_factory=list)
    plans: list[InsertionPlan] = field(default_factory=list)


def prepare(module: Module, strategy: Strategy,
            local_host: str | None = None,
            let_sinking: bool = True) -> DecompositionCandidates:
    """Run the analysis half of the pipeline: normalise, build the
    d-graph, and compute the strategy's insertion candidates — without
    rewriting the AST yet."""
    normalized = normalize(module) if let_sinking else module
    if not strategy.decomposes:
        return DecompositionCandidates(strategy, normalized,
                                       build_dgraph(normalized))
    graph = build_dgraph(normalized)
    dpoints = valid_decomposition_points(graph, strategy.value)
    ipoints = interesting_points(graph, dpoints)
    plans = select_insertions(graph, ipoints, local_host)
    return DecompositionCandidates(strategy, normalized, graph,
                                   dpoints, ipoints, plans)


def realize(candidates: DecompositionCandidates,
            include: Iterable[InsertionPlan] | None = None,
            code_motion: bool = True) -> DecompositionResult:
    """Commit a (sub)set of the candidate insertions into a rewritten
    module. ``include=None`` realises every candidate point (the fixed
    strategies); the planner passes subsets to build mixed plans that
    ship some documents while decomposing others."""
    strategy = candidates.strategy
    if include is None:
        plans = candidates.plans
    else:
        keep = {id(plan) for plan in include}
        plans = [plan for plan in candidates.plans if id(plan) in keep]
    if not strategy.decomposes:
        return DecompositionResult(strategy, candidates.normalized,
                                   candidates.normalized, candidates.graph,
                                   candidates.dpoints, candidates.ipoints,
                                   plans)
    rewritten = insert_xrpc(candidates.normalized, plans)
    if strategy.uses_fragments and code_motion:
        rewritten = apply_code_motion(rewritten)
    return DecompositionResult(strategy, rewritten, candidates.normalized,
                               candidates.graph, candidates.dpoints,
                               candidates.ipoints, plans)


def decompose(module: Module, strategy: Strategy,
              local_host: str | None = None,
              code_motion: bool = True,
              let_sinking: bool = True) -> DecompositionResult:
    """Run the full decomposition pipeline for one strategy.

    ``local_host`` is the originator peer's name: interesting points
    whose documents live there are pointless to ship. The
    ``code_motion`` / ``let_sinking`` switches exist for the ablation
    benchmarks; both default to the paper's configuration.
    """
    candidates = prepare(module, strategy, local_host=local_host,
                         let_sinking=let_sinking)
    return realize(candidates, code_motion=code_motion)
