"""The insertion conditions of Sections IV-VI.

A vertex ``rs`` is a *valid decomposition point* (member of ``I(G)``)
iff none of the strategy's conditions fires. The by-value conditions
(Section IV):

* **i** — no reverse/horizontal axis step uses the remote result or a
  shipped parameter (Problem 1);
* **ii** — no node comparison (``is``/``<<``/``>>``) or node-set
  operator does so (Problems 2-3);
* **iii** — no (downward) axis step is applied to shipped nodes that
  may form a "mixed-call sequence", be out of document order, or
  overlap: a mixer vertex (ForExpr / OrderExpr / ExprSeq / NodeSetExpr /
  an overlapping-axis step) is involved with the shipped data
  (Problem 4);
* **iv** — no ``fn:root``/``fn:id``/``fn:idref`` call uses shipped
  nodes (Problem 5, Classes 3-4).

By-fragment (Section V) keeps i and iv, removes ForExpr/OrderExpr and
overlapping axes from the mixer set (Bulk RPC plus order/containment
preservation in the message format), and restricts ii/iii to consumers
that actually mix two different applications of the same document
(``hasMatchingDoc``). By-projection (Section VI) additionally drops
i and iv.

Reading note on condition iii: the paper's formula relates ``rs``, the
step ``n`` and the mixer ``m`` through the dependency relation. We
implement the reading that reproduces the paper's worked Example 4.1
exactly (``I'(G) = {v1, v4}`` on Figure 2): a mixer is *involved* with
``rs`` when ``rs`` depends on it **or** it parse-contains ``rs`` —
the latter covers the "as well as all their descendants" exclusion the
example spells out.
"""

from __future__ import annotations

from repro.dgraph.analysis import matching_doc_conflict
from repro.dgraph.graph import DGraph, Vertex, axis_category
from repro.xmldb.axes import NON_OVERLAPPING_AXES

#: Mixer rules for condition iii under pass-by-value.
MIXER_RULES_BY_VALUE = frozenset({
    "ForExpr", "OrderExpr", "ExprSeq", "NodeSetExpr",
})

#: Mixer rules under pass-by-fragment / pass-by-projection: Bulk RPC
#: removes ForExpr; the ordered, deduplicated fragment format removes
#: OrderExpr and the overlapping-axis restriction.
MIXER_RULES_BY_FRAGMENT = frozenset({"ExprSeq", "NodeSetExpr"})

#: Built-ins of condition iv (Problem 5 Classes 3-4).
CONDITION_IV_FUNCTIONS = frozenset({"root", "id", "idref"})


def _is_mixer(graph: DGraph, vertex: Vertex, allow_loops: bool) -> bool:
    """Is this vertex a condition-iii mixer under the given mixer set?

    ``allow_loops`` selects the by-fragment relaxation.
    """
    rules = MIXER_RULES_BY_FRAGMENT if allow_loops else MIXER_RULES_BY_VALUE
    if vertex.rule in rules:
        # The empty sequence "()" cannot mix anything.
        return vertex.val != "()"
    if not allow_loops and vertex.rule == "AxisStep":
        axis = (vertex.val or "").split("::", 1)[0]
        return axis not in NON_OVERLAPPING_AXES
    return False


def _axis_step_vertices(graph: DGraph) -> list[Vertex]:
    return graph.by_rule("AxisStep")


def _uses(graph: DGraph, n: int, rs: int) -> bool:
    """useResult(n, rs) or useParam(n, rs)."""
    subgraph = graph.parse_descendants(rs)
    if n in subgraph:
        return bool(graph.depends_set(n) - subgraph)  # useParam
    return graph.depends(n, rs)  # useResult


def _condition_i(graph: DGraph, rs: int) -> bool:
    """True when condition i FAILS (a violation exists)."""
    for vertex in _axis_step_vertices(graph):
        axis = (vertex.val or "").split("::", 1)[0]
        if axis_category(axis) == "FwdAxis":
            continue
        if _uses(graph, vertex.vid, rs):
            return True
    return False


def _condition_ii(graph: DGraph, rs: int, fragment: bool) -> bool:
    for vertex in graph.by_rule("NodeCmp", "NodeSetExpr"):
        if not _uses(graph, vertex.vid, rs):
            continue
        if fragment and not matching_doc_conflict(graph, vertex.vid, rs):
            continue  # identity preserved within one fragment space
        return True
    return False


def _condition_iii(graph: DGraph, rs: int, fragment: bool) -> bool:
    subgraph = graph.parse_descendants(rs)
    mixers = [v for v in graph.vertices
              if _is_mixer(graph, v, allow_loops=fragment)]
    seq_mixers = [v for v in graph.by_rule("ExprSeq", "NodeSetExpr")
                  if v.val != "()"]
    if not mixers and not seq_mixers:
        return False
    steps = _axis_step_vertices(graph)

    for n in steps:
        if n.vid in subgraph:
            # Parameter side: a step inside the shipped body applied to
            # outside data that flows through a mixer.
            outside = graph.depends_set(n.vid) - subgraph
            if not outside:
                continue
            for m in mixers:
                if any(graph.depends(v, m.vid) for v in outside):
                    if fragment and not matching_doc_conflict(
                            graph, n.vid, rs):
                        continue
                    return True
        else:
            if not graph.depends(n.vid, rs):
                continue
            # Result side (paper's first disjunct): a step applied
            # (directly or via variables) to the remote result, where
            # the shipped subquery itself contains (depends on) a
            # mixer — its result sequence may be out of order,
            # overlapping, or a mixed-call sequence. The reflexive
            # case excludes shipping a ForExpr whose own output
            # receives steps.
            for m in mixers:
                if not graph.depends(rs, m.vid):
                    continue
                if fragment and not matching_doc_conflict(graph, n.vid, rs):
                    continue
                return True
            # Consumer-side mixing (Problem 4): a sequence/set operator
            # *between* the step and the shipped subquery combines the
            # remote result with other nodes. By-value prohibits this
            # outright; by-fragment/projection only when the mix can
            # contain the same document through a different call site
            # (hasMatchingDoc).
            for m in seq_mixers:
                if not (graph.depends(n.vid, m.vid)
                        and graph.depends(m.vid, rs)):
                    continue
                if fragment and not matching_doc_conflict(graph, n.vid, rs):
                    continue
                return True
    return False


def _condition_iv(graph: DGraph, rs: int) -> bool:
    for vertex in graph.by_rule("FunCall"):
        if vertex.val not in CONDITION_IV_FUNCTIONS:
            continue
        if _uses(graph, vertex.vid, rs):
            return True
    return False


def is_valid_dpoint(graph: DGraph, rs: int, strategy: str) -> bool:
    """Check all insertion conditions for candidate ``rs``.

    ``strategy`` is one of ``"by-value"``, ``"by-fragment"``,
    ``"by-projection"`` (the :class:`~repro.decompose.strategy.Strategy`
    values).
    """
    vertex = graph[rs]
    if vertex.rule in ("Var", "XRPCParam", "ThenElse", "CaseClause",
                       "DefaultClause"):
        return False
    fragment = strategy in ("by-fragment", "by-projection")
    if strategy == "by-projection":
        # Conditions i and iv are solved by runtime projection.
        return not (_condition_ii(graph, rs, fragment=True)
                    or _condition_iii(graph, rs, fragment=True))
    if _condition_i(graph, rs):
        return False
    if _condition_ii(graph, rs, fragment):
        return False
    if _condition_iii(graph, rs, fragment):
        return False
    if _condition_iv(graph, rs):
        return False
    return True


def valid_decomposition_points(graph: DGraph, strategy: str) -> set[int]:
    """I(G): every vertex satisfying the strategy's conditions."""
    return {vertex.vid for vertex in graph.vertices
            if is_valid_dpoint(graph, vertex.vid, strategy)}
