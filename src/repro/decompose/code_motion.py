"""Distributed code motion (Section IV, Example 4.3).

"Expressions that solely depend on a parameter of a function can better
be evaluated on the caller side": when every use of an XRPC parameter
``$p`` inside the shipped body is a downward path ``$p/steps`` consumed
in an atomizing context (a value comparison, arithmetic, or an
atomizing built-in), we evaluate those paths at the caller and pass
their (much smaller) results as new parameters instead — the
``fcn2new`` rewrite of Table IV, which ships ``$t/child::id`` strings
instead of full person subtrees.

The "only d-points are moved" safety requirement of the paper
translates here into the atomizing-consumer restriction: the moved
result is a by-value copy, so nothing downstream may test its identity,
structure, or apply further steps — impossible by construction, since
we extract *maximal* paths and require value-level consumers.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.xquery.ast import (
    ArithmeticExpr, ComparisonExpr, Expr, FunCall, FunctionDecl, Module,
    PathExpr, Step, VarRef, XRPCExpr, XRPCParam,
)

#: Axes that may appear in a moved path (downward, no identity hazards).
_DOWNWARD_AXES = frozenset({
    "child", "attribute", "descendant", "descendant-or-self", "self",
})

#: Built-ins for which ``f(data(path))`` equals ``f(path)`` — the
#: moved parameter is shipped *atomized* (the paper's fcn2new takes
#: ``xs:string*``), so consumers must tolerate atoms. This excludes
#: EBV contexts (``not``, ``if``-conditions, ...): the effective
#: boolean value of a multi-item atomic sequence is an error while a
#: node sequence's is true.
_DATA_SAFE_BUILTINS = frozenset({
    "data", "string", "number", "empty", "exists", "count", "sum",
    "avg", "max", "min", "concat", "string-join", "contains",
    "starts-with", "ends-with", "substring", "substring-before",
    "substring-after", "normalize-space", "upper-case", "lower-case",
    "distinct-values", "index-of",
})


@dataclass
class _Candidate:
    """One parameter use: the path applied to it and its consumer."""

    path: PathExpr
    extractable: bool


def apply_code_motion(module: Module) -> Module:
    """Rewrite every XRPCExpr in the module with code motion applied."""

    def rewrite(expr: Expr) -> Expr:
        expr = expr.replace_children(rewrite)
        if isinstance(expr, XRPCExpr):
            return _motion_one(expr)
        return expr

    functions = [
        FunctionDecl(decl.name, decl.params, decl.return_type,
                     rewrite(decl.body))
        for decl in module.functions
    ]
    return Module(functions, rewrite(module.body))


def _motion_one(xrpc: XRPCExpr) -> XRPCExpr:
    params: list[XRPCParam] = []
    body = xrpc.body
    for param in xrpc.params:
        moved = _try_move(param, body)
        if moved is None:
            params.append(param)
        else:
            new_params, body = moved
            params.extend(new_params)
    return XRPCExpr(xrpc.dest, params, body)


def _try_move(param: XRPCParam,
              body: Expr) -> tuple[list[XRPCParam], Expr] | None:
    """Attempt to replace ``param`` by path-result parameters.

    Returns (new parameters, rewritten body) or None when any use is
    not extractable.
    """
    uses = _collect_uses(body, param.name)
    if uses is None or not uses:
        return None
    if not all(u.extractable for u in uses):
        return None

    # One new parameter per distinct path shape, shipped atomized
    # (the fcn2new rewrite of Table IV declares xs:string*): atomic
    # values marshal as tiny typed items with no fragment anchoring.
    path_keys: dict[tuple, str] = {}
    new_params: list[XRPCParam] = []
    for use in uses:
        key = _path_key(use.path)
        if key not in path_keys:
            name = f"{param.name}_cm{len(path_keys) + 1}"
            path_keys[key] = name
            caller_path = PathExpr(param.value,
                                   [Step(s.axis, s.test, [])
                                    for s in use.path.steps])
            new_params.append(XRPCParam(name,
                                        FunCall("data", [caller_path])))

    replacements = {id(use.path): VarRef(path_keys[_path_key(use.path)])
                    for use in uses}

    def rewrite(expr: Expr) -> Expr:
        replacement = replacements.get(id(expr))
        if replacement is not None:
            return replacement
        return expr.replace_children(rewrite)

    return new_params, rewrite(body)


def _path_key(path: PathExpr) -> tuple:
    return tuple((s.axis, s.test) for s in path.steps)


def _collect_uses(body: Expr, name: str) -> list[_Candidate] | None:
    """Find every use of ``$name`` in ``body``.

    Returns None when a use occurs outside a ``$name/steps`` path (the
    parameter itself escapes), which blocks motion entirely.
    """
    uses: list[_Candidate] = []
    blocked = False

    def visit(expr: Expr, parent: Expr | None) -> None:
        nonlocal blocked
        if blocked:
            return
        if isinstance(expr, VarRef) and expr.name == name:
            # A bare reference not wrapped by a path input: escapes.
            blocked = True
            return
        if isinstance(expr, PathExpr) and \
                isinstance(expr.input, VarRef) and expr.input.name == name:
            extractable = (_all_downward(expr)
                           and _atomizing_consumer(parent, expr))
            uses.append(_Candidate(expr, extractable))
            # Predicates may still reference the parameter.
            for step in expr.steps:
                for predicate in step.predicates:
                    visit(predicate, expr)
            return
        for child in expr.child_exprs():
            visit(child, expr)

    visit(body, None)
    if blocked:
        return None
    return uses


def _all_downward(path: PathExpr) -> bool:
    return all(step.axis in _DOWNWARD_AXES and not step.predicates
               for step in path.steps)


def _atomizing_consumer(parent: Expr | None, path: PathExpr) -> bool:
    """Is the consumer indifferent to receiving ``data(path)``?

    General comparisons and arithmetic atomize anyway; the whitelisted
    built-ins are value/cardinality functions with identical results
    on atoms. EBV positions (if-conditions, and/or, quantifiers, not)
    are NOT safe: multi-item atomic sequences have no EBV.
    """
    if parent is None:
        return False  # the path result is the function result: escapes
    if isinstance(parent, ComparisonExpr):
        return not parent.is_node_comparison
    if isinstance(parent, ArithmeticExpr):
        return True
    if isinstance(parent, FunCall):
        return parent.name in _DATA_SAFE_BUILTINS
    return False
