"""Query decomposition: the paper's core contribution.

Pipeline (:func:`decompose`): normalise (let-sinking) -> build the
d-graph -> compute valid decomposition points ``I(G)`` under the
strategy's insertion conditions -> filter to interesting points
``I'(G)`` -> insert ``XRPCExpr`` nodes -> (for by-fragment and
by-projection) apply distributed code motion.

Strategies:

* :data:`Strategy.DATA_SHIPPING` — no decomposition; remote documents
  are fetched whole (the W3C-standard baseline the paper argues
  against).
* :data:`Strategy.BY_VALUE` — conservative decomposition under
  pass-by-value messages (Section IV).
* :data:`Strategy.BY_FRAGMENT` — relaxed conditions justified by the
  pass-by-fragment message format and Bulk RPC (Section V).
* :data:`Strategy.BY_PROJECTION` — further relaxed conditions justified
  by runtime XML projection (Section VI).
"""

from repro.decompose.strategy import (
    AUTO, DecompositionCandidates, DecompositionResult, Strategy, decompose,
    prepare, realize, strategy_label,
)
from repro.decompose.conditions import (
    valid_decomposition_points, is_valid_dpoint, MIXER_RULES_BY_VALUE,
    MIXER_RULES_BY_FRAGMENT,
)
from repro.decompose.points import interesting_points, select_insertions, \
    InsertionPlan
from repro.decompose.rewrite import insert_xrpc
from repro.decompose.code_motion import apply_code_motion

__all__ = [
    "AUTO", "Strategy", "DecompositionResult", "DecompositionCandidates",
    "decompose", "prepare", "realize", "strategy_label",
    "valid_decomposition_points", "is_valid_dpoint",
    "MIXER_RULES_BY_VALUE", "MIXER_RULES_BY_FRAGMENT",
    "interesting_points", "select_insertions", "InsertionPlan",
    "insert_xrpc", "apply_code_motion",
]
