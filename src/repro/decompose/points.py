"""Interesting decomposition points ``I'(G)`` and insertion planning.

A valid d-point is *interesting* (Section IV) when (a) it is the root
vertex of its URI-dependency equivalence class, (b) its subquery opens
at least one document via an ``xrpc://`` URI, and (c) it performs at
least one XPath step — "executing fn:doc() remotely provides no
performance gain, as it only demands the shipping of a whole document".

From ``I'(G)`` we build an :class:`InsertionPlan`: the outermost
non-root interesting points whose documents live on a single remote
peer, each mapped back to the AST expression (or path prefix) it
covers.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dgraph.analysis import DocDep, uri_dependencies
from repro.dgraph.graph import DGraph, Vertex
from repro.xquery.ast import Expr

XRPC_SCHEME = "xrpc://"


def xrpc_host(uri: str) -> str | None:
    """Host part of an ``xrpc://host/path`` URI, else None."""
    if not uri.startswith(XRPC_SCHEME):
        return None
    rest = uri[len(XRPC_SCHEME):]
    return rest.split("/", 1)[0] or None


@dataclass(frozen=True)
class InsertionPlan:
    """One planned ``XRPCExpr`` insertion.

    ``target`` is the AST expression to ship; for a path-prefix point,
    ``step_count`` is the number of leading steps included (None means
    the whole expression).
    """

    vertex: int
    target: Expr
    step_count: int | None
    host: str


def interesting_points(graph: DGraph, dpoints: set[int]) -> list[int]:
    """I'(G) per the Section IV definition, in vertex order.

    Restriction (a) — "are a root vertex in their induced subgraph" —
    is applied relative to the *valid* points: the highest valid
    d-point of each URI-dependency equivalence class is the class
    root. (An invalid class root, e.g. a for-loop that condition iii
    excludes, must not disqualify the valid points inside it; shipping
    the highest valid one realises as much of the class as the
    conditions allow.)
    """
    out: list[int] = []
    for vertex in graph.vertices:
        if vertex.vid not in dpoints:
            continue
        deps = uri_dependencies(graph, vertex.vid)
        if not _has_xrpc_uri(deps):
            continue  # restriction on D(vx) content
        if not _has_axis_step(graph, vertex):
            continue  # restriction (c)
        if not _is_class_root(graph, vertex, deps, dpoints):
            continue  # restriction (a)
        out.append(vertex.vid)
    return out


def _has_xrpc_uri(deps: frozenset[DocDep]) -> bool:
    return any(dep.uri.startswith(XRPC_SCHEME) for dep in deps)


def _has_axis_step(graph: DGraph, vertex: Vertex) -> bool:
    return any(graph[vid].rule == "AxisStep"
               for vid in graph.parse_descendants(vertex.vid))


def _is_class_root(graph: DGraph, vertex: Vertex, deps: frozenset[DocDep],
                   dpoints: set[int]) -> bool:
    """No proper parse ancestor with the same URI dependency set is
    itself a valid d-point.

    Var vertices are transparent (footnote 1: a class rooted at a
    ``Var`` uses its value expression as root). An ancestor with a
    *different* D ends the class upward — the class root has been
    reached.
    """
    parent = vertex.parent
    while parent is not None:
        ancestor = graph[parent]
        if ancestor.rule == "Var":
            parent = ancestor.parent
            continue
        if uri_dependencies(graph, ancestor.vid) != deps:
            return True
        if ancestor.vid in dpoints:
            return False  # a higher valid point of the same class
        parent = ancestor.parent
    return True  # reached the graph root within the class


def select_insertions(graph: DGraph, ipoints: list[int],
                      local_host: str | None = None) -> list[InsertionPlan]:
    """Choose the outermost single-peer interesting points.

    The graph root is never selected (it means "run the whole query
    locally", the fcn0 of Table IV). Points nested inside an already
    selected point are skipped — the shipped subquery carries them
    along. Points whose documents span several peers are skipped
    (distributed placement across peers is the paper's future work).
    """
    chosen: list[InsertionPlan] = []
    covered: set[int] = set()
    for vid in sorted(ipoints):
        if vid in covered:
            continue
        vertex = graph[vid]
        if vertex.ast is None:
            continue
        host = _single_remote_host(graph, vid, local_host)
        if host is None:
            continue
        chosen.append(InsertionPlan(vid, vertex.ast, vertex.step_count,
                                    host))
        covered |= set(graph.parse_descendants(vid))
    return chosen


def _single_remote_host(graph: DGraph, vid: int,
                        local_host: str | None) -> str | None:
    """The one remote peer that can run this subquery locally, or None.

    Every document dependency must be shippable: xrpc URIs of a single
    remote host, or constructed nodes (which evaluate anywhere). A
    plain (originator-relative) URI or a computed wildcard pins the
    subquery to the originator.
    """
    hosts: set[str] = set()
    for dep in uri_dependencies(graph, vid):
        if dep.uri.startswith("constructed:"):
            continue
        host = xrpc_host(dep.uri)
        if host is None:
            return None  # relative or computed URI: stay local
        hosts.add(host)
    if len(hosts) != 1:
        return None
    host = hosts.pop()
    if host == local_host:
        return None
    return host
