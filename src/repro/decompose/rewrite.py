"""XRPCExpr insertion: realising Section III-B on the AST.

The d-graph procedure inserts a ``vx:XRPCExpr`` above the chosen
subgraph and redirects outgoing varref edges through ``XRPCParam``
vertices. On the AST this is: wrap the target expression in an
:class:`~repro.xquery.ast.XRPCExpr` whose parameters bind every free
variable of the target (those are exactly the outgoing varref edges),
with the body referencing the parameters by the same names.

A plan may cover only a *prefix* of a path expression (a mid-chain
AxisStep vertex); the path is then split: the prefix ships, the suffix
steps stay local and consume the remote result.
"""

from __future__ import annotations

from repro.decompose.points import InsertionPlan
from repro.xquery.ast import (
    Expr, FunctionDecl, Literal, Module, PathExpr, VarRef, XRPCExpr,
    XRPCParam,
)
from repro.xquery.scopes import free_variables


def insert_xrpc(module: Module, plans: list[InsertionPlan]) -> Module:
    """Apply every insertion plan; targets are matched by object
    identity, so plans must refer to expressions of this module."""
    if not plans:
        return module
    by_target: dict[int, InsertionPlan] = {id(p.target): p for p in plans}

    def rewrite(expr: Expr) -> Expr:
        plan = by_target.get(id(expr))
        if plan is not None:
            return _apply_plan(plan, rewrite)
        return expr.replace_children(rewrite)

    functions = [
        FunctionDecl(decl.name, decl.params, decl.return_type,
                     rewrite(decl.body))
        for decl in module.functions
    ]
    return Module(functions, rewrite(module.body))


def _apply_plan(plan: InsertionPlan, rewrite) -> Expr:
    target = plan.target
    if plan.step_count is not None and isinstance(target, PathExpr) \
            and plan.step_count < len(target.steps):
        prefix = PathExpr(target.input, target.steps[:plan.step_count])
        suffix_steps = target.steps[plan.step_count:]
        shipped = _wrap(prefix, plan.host)
        # Suffix predicates may still contain nested targets.
        return PathExpr(shipped, suffix_steps).replace_children(rewrite)
    # Children of the shipped body are rewritten first so nested plans
    # (none are generated today, but the API allows them) still apply.
    body = target.replace_children(rewrite)
    return _wrap(body, plan.host)


def _wrap(body: Expr, host: str) -> XRPCExpr:
    """Step 1-3 of the insertion procedure: parameters are the free
    variables of the shipped subgraph (its outgoing varref edges)."""
    params = [XRPCParam(name, VarRef(name))
              for name in sorted(free_variables(body))]
    return XRPCExpr(Literal(host), params, body)
