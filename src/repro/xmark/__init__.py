"""Synthetic XMark data (Schmidt et al., VLDB 2002).

The paper's evaluation stores one XMark document per remote peer and
splits the benchmark query's accesses between the ``people`` half
(persons with ids and ages) and the ``auctions`` half (open auctions
with sellers and annotations). This generator reproduces exactly the
element structure those queries touch — plus the bulky payload fields
(addresses, profiles, descriptions) whose *removal* is what makes the
paper's projection numbers interesting — with sizes scaling linearly
in the ``scale`` knob, mirroring XMark's scale factor.
"""

from repro.xmark.generator import (
    XMarkConfig, generate_people, generate_auctions, generate_pair,
    spill_pair, spill_people, spill_auctions,
)

__all__ = ["XMarkConfig", "generate_people", "generate_auctions",
           "generate_pair", "spill_pair", "spill_people",
           "spill_auctions"]
