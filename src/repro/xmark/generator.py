"""Deterministic XMark-schema document generation.

Documents are built directly into the pre/size/level store (no text
round-trip), with a seeded PRNG so every (scale, seed) pair produces
byte-identical data — benchmarks are reproducible run to run.

Structure (the subset of the XMark DTD the paper's query touches,
plus realistic filler):

* people document::

    site/people/person[@id]
        name, emailaddress, phone, age, creditcard,
        address(street, city, country, zipcode),
        profile[@income](interest[@category]*, education?, business),
        watches(watch[@open_auction]*)

* auctions document::

    site/open_auctions/open_auction[@id]
        initial, reserve, bidder(date, time, personref[@person],
        increase)*, current, privacy, itemref[@item],
        seller[@person], annotation(author[@person],
        description(text), happiness), quantity, type,
        interval(start, end)

``seller/@person`` references person ids so the paper's semijoin
benchmark query has real matches; ages are uniform in [18, 70] so the
``age < 40`` filter selects ~42% of persons.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from sys import intern

from repro.xmldb.document import Document, DocumentBuilder

#: Region element tags, interned up front: generated documents reuse
#: one string object per tag, so tag-index keys and name tests compare
#: by identity (DocumentBuilder interns every name it is handed too).
_REGIONS = tuple(intern(name) for name in (
    "africa", "asia", "australia", "europe", "namerica", "samerica"))

_FIRST_NAMES = [
    "Ann", "Bart", "Carol", "Dirk", "Els", "Frank", "Greet", "Hugo",
    "Ines", "Joost", "Karen", "Lars", "Mara", "Nils", "Olga", "Piet",
    "Quinn", "Rosa", "Sven", "Tess", "Umar", "Vera", "Wout", "Xena",
    "Yves", "Zoe",
]
_LAST_NAMES = [
    "Jansen", "deVries", "Bakker", "Visser", "Smit", "Meyer", "Mulder",
    "Bos", "Peters", "Hendriks", "Dekker", "Brouwer", "Dijkstra",
    "Kuipers", "Veenstra", "Hoekstra",
]
_CITIES = [
    "Amsterdam", "Rotterdam", "Utrecht", "Eindhoven", "Groningen",
    "Tilburg", "Almere", "Breda", "Nijmegen", "Enschede",
]
_COUNTRIES = ["Netherlands", "Belgium", "Germany", "France", "Denmark"]
_INTERESTS = [
    "category1", "category7", "category12", "category23", "category31",
    "category44", "category56", "category68", "category77", "category85",
]
_WORDS = (
    "auction item vintage rare collectible mint condition original "
    "boxed signed limited edition classic antique restored pristine "
    "shipping included reserve bidding increment listing gallery "
    "photograph certificate authenticity provenance estate curated"
).split()

#: Persons per unit of scale (scale 1.0 ~ a few MB of XML, the same
#: linear-sizing contract as XMark's scale factor at smaller constants).
PERSONS_PER_SCALE = 2500
AUCTIONS_PER_SCALE = 3000


@dataclass(frozen=True)
class XMarkConfig:
    """Knobs for one generated pair of documents."""

    scale: float = 0.01
    seed: int = 20090329  # the conference date, for determinism

    @property
    def person_count(self) -> int:
        return max(2, int(PERSONS_PER_SCALE * self.scale))

    @property
    def auction_count(self) -> int:
        return max(2, int(AUCTIONS_PER_SCALE * self.scale))


def _sentence(rng: random.Random, words: int) -> str:
    return " ".join(rng.choice(_WORDS) for _ in range(words))


def generate_people(config: XMarkConfig, uri: str = "people.xml") -> Document:
    """Generate the people half: site/(regions, categories, people).

    Like the paper's ``xmk_nn_MB.xml``, the document carries more than
    persons — regions with items and a category list — so pushing the
    ``/site/people/person`` path to the data peer (pass-by-value's only
    legal move on the benchmark query) skips real content.
    """
    return _people_builder(config, uri).finish()


def _people_builder(config: XMarkConfig, uri: str) -> DocumentBuilder:
    rng = random.Random(config.seed)
    builder = DocumentBuilder(uri)
    builder.start_document()
    builder.start_element("site")
    _regions(builder, rng, config)
    _categories(builder, rng, config)
    builder.start_element("people")
    for index in range(config.person_count):
        _person(builder, rng, index, config.auction_count)
    builder.end_element()
    builder.end_element()
    builder.end_document()
    return builder


def _regions(builder: DocumentBuilder, rng: random.Random,
             config: XMarkConfig) -> None:
    item_count = config.person_count  # items scale with the document
    per_region = max(1, item_count // 6)
    builder.start_element("regions")
    index = 0
    for region in _REGIONS:
        builder.start_element(region)
        for _ in range(per_region):
            builder.start_element("item")
            builder.attribute("id", f"item{index}")
            _leaf(builder, "location", rng.choice(_COUNTRIES))
            _leaf(builder, "quantity", str(rng.randint(1, 9)))
            _leaf(builder, "name", _sentence(rng, 3))
            builder.start_element("payment")
            builder.text(rng.choice(["Creditcard", "Cash",
                                     "Personal Check"]))
            builder.end_element()
            builder.start_element("description")
            _leaf(builder, "text", _sentence(rng, rng.randint(15, 45)))
            builder.end_element()
            _leaf(builder, "shipping", rng.choice(
                ["Will ship internationally", "Buyer pays shipping"]))
            builder.end_element()
            index += 1
        builder.end_element()
    builder.end_element()


def _categories(builder: DocumentBuilder, rng: random.Random,
                config: XMarkConfig) -> None:
    builder.start_element("categories")
    for index in range(max(2, config.person_count // 25)):
        builder.start_element("category")
        builder.attribute("id", f"category{index}")
        _leaf(builder, "name", _sentence(rng, 2))
        builder.start_element("description")
        _leaf(builder, "text", _sentence(rng, rng.randint(8, 20)))
        builder.end_element()
        builder.end_element()
    builder.end_element()


def _person(builder: DocumentBuilder, rng: random.Random, index: int,
            auction_count: int) -> None:
    first = rng.choice(_FIRST_NAMES)
    last = rng.choice(_LAST_NAMES)
    builder.start_element("person")
    builder.attribute("id", f"person{index}")
    _leaf(builder, "name", f"{first} {last}")
    _leaf(builder, "emailaddress",
          f"mailto:{first.lower()}.{last.lower()}{index}@example.org")
    _leaf(builder, "phone", f"+31 {rng.randint(10, 99)} "
                            f"{rng.randint(1000000, 9999999)}")
    _leaf(builder, "age", str(rng.randint(18, 70)))
    _leaf(builder, "creditcard",
          " ".join(str(rng.randint(1000, 9999)) for _ in range(4)))
    builder.start_element("address")
    _leaf(builder, "street", f"{rng.randint(1, 120)} "
                             f"{rng.choice(_LAST_NAMES)}straat")
    _leaf(builder, "city", rng.choice(_CITIES))
    _leaf(builder, "country", rng.choice(_COUNTRIES))
    _leaf(builder, "zipcode", str(rng.randint(1000, 9999)))
    builder.end_element()
    builder.start_element("profile")
    builder.attribute("income", f"{rng.randint(20000, 90000)}.00")
    for _ in range(rng.randint(0, 4)):
        builder.start_element("interest")
        builder.attribute("category", rng.choice(_INTERESTS))
        builder.end_element()
    if rng.random() < 0.6:
        _leaf(builder, "education",
              rng.choice(["High School", "College", "Graduate School"]))
    _leaf(builder, "business", rng.choice(["Yes", "No"]))
    builder.end_element()
    builder.start_element("watches")
    for _ in range(rng.randint(0, 3)):
        builder.start_element("watch")
        builder.attribute(
            "open_auction",
            f"open_auction{rng.randrange(max(1, auction_count))}")
        builder.end_element()
    builder.end_element()
    builder.end_element()


def generate_auctions(config: XMarkConfig,
                      uri: str = "auctions.xml") -> Document:
    """Generate the auctions half (site/open_auctions/open_auction...)."""
    return _auctions_builder(config, uri).finish()


def _auctions_builder(config: XMarkConfig, uri: str) -> DocumentBuilder:
    rng = random.Random(config.seed + 1)
    builder = DocumentBuilder(uri)
    builder.start_document()
    builder.start_element("site")
    builder.start_element("open_auctions")
    for index in range(config.auction_count):
        _auction(builder, rng, index, config.person_count)
    builder.end_element()
    builder.end_element()
    builder.end_document()
    return builder


def _auction(builder: DocumentBuilder, rng: random.Random, index: int,
             person_count: int) -> None:
    builder.start_element("open_auction")
    builder.attribute("id", f"open_auction{index}")
    initial = rng.randint(5, 300)
    _leaf(builder, "initial", f"{initial}.00")
    _leaf(builder, "reserve", f"{initial + rng.randint(10, 200)}.00")
    current = initial
    for _ in range(rng.randint(0, 4)):
        increase = rng.randint(1, 30)
        current += increase
        builder.start_element("bidder")
        _leaf(builder, "date", f"{rng.randint(1, 28):02d}/"
                               f"{rng.randint(1, 12):02d}/2008")
        _leaf(builder, "time", f"{rng.randint(0, 23):02d}:"
                               f"{rng.randint(0, 59):02d}:00")
        builder.start_element("personref")
        builder.attribute("person", f"person{rng.randrange(person_count)}")
        builder.end_element()
        _leaf(builder, "increase", f"{increase}.00")
        builder.end_element()
    _leaf(builder, "current", f"{current}.00")
    _leaf(builder, "privacy", rng.choice(["Yes", "No"]))
    builder.start_element("itemref")
    builder.attribute("item", f"item{rng.randint(0, 9999)}")
    builder.end_element()
    builder.start_element("seller")
    builder.attribute("person", f"person{rng.randrange(person_count)}")
    builder.end_element()
    builder.start_element("annotation")
    builder.start_element("author")
    builder.attribute("person", f"person{rng.randrange(person_count)}")
    builder.end_element()
    builder.start_element("description")
    _leaf(builder, "text", _sentence(rng, rng.randint(12, 40)))
    builder.end_element()
    _leaf(builder, "happiness", str(rng.randint(1, 10)))
    builder.end_element()
    _leaf(builder, "quantity", str(rng.randint(1, 5)))
    _leaf(builder, "type", rng.choice(["Regular", "Featured", "Dutch"]))
    builder.start_element("interval")
    _leaf(builder, "start", f"{rng.randint(1, 28):02d}/01/2008")
    _leaf(builder, "end", f"{rng.randint(1, 28):02d}/12/2008")
    builder.end_element()
    builder.end_element()


def _leaf(builder: DocumentBuilder, name: str, text: str) -> None:
    builder.start_element(name)
    builder.text(text)
    builder.end_element()


def generate_pair(scale: float, seed: int = 20090329,
                  people_uri: str = "people.xml",
                  auctions_uri: str = "auctions.xml"
                  ) -> tuple[Document, Document]:
    """Generate the (people, auctions) document pair for one scale."""
    config = XMarkConfig(scale=scale, seed=seed)
    return (generate_people(config, people_uri),
            generate_auctions(config, auctions_uri))


# ---------------------------------------------------------------------------
# Streaming scale-factor mode (columnar spill)
# ---------------------------------------------------------------------------


def spill_people(config: XMarkConfig, path: "str | Path",
                 uri: str = "people.xml") -> int:
    """Generate the people half straight into a bare
    :class:`~repro.xmldb.columns.ColumnSet` and freeze it to ``path``
    (XCOL1 — see :mod:`repro.xmldb.pool`); returns the file size.

    The builder accumulates typed columns directly — no XML text, no
    :class:`Document` object, no index/cache slots — so the peak
    footprint of staging a corpus is one document's raw columns, and
    the reopened file is served page-wise under the buffer pool.
    """
    from repro.xmldb.pool import freeze_columns

    builder = _people_builder(config, uri)
    return freeze_columns(builder.finish_columns(), uri, path)


def spill_auctions(config: XMarkConfig, path: "str | Path",
                   uri: str = "auctions.xml") -> int:
    """The auctions half of :func:`spill_people`."""
    from repro.xmldb.pool import freeze_columns

    builder = _auctions_builder(config, uri)
    return freeze_columns(builder.finish_columns(), uri, path)


def spill_pair(scale: float, directory: "str | Path",
               seed: int = 20090329,
               people_uri: str = "people.xml",
               auctions_uri: str = "auctions.xml"):
    """Stage the (people, auctions) pair as two XCOL1 spill files in
    ``directory``, one at a time — the streaming scale-factor mode.

    Returns ``(people_path, auctions_path)``. The files reopen via
    :func:`repro.xmldb.pool.open_document` under any buffer-pool
    budget; the data is identical to :func:`generate_pair` at the same
    ``(scale, seed)``.
    """
    from pathlib import Path

    directory = Path(directory)
    config = XMarkConfig(scale=scale, seed=seed)
    people_path = directory / "people.xcol"
    auctions_path = directory / "auctions.xcol"
    spill_people(config, people_path, people_uri)
    spill_auctions(config, auctions_path, auctions_uri)
    return people_path, auctions_path
