"""A projection-aware result/fragment cache shared across queries.

Two kinds of entries, both bounded by LRU:

* **response entries** — the serialised XML of one XRPC response, keyed
  by ``(dest peer, request digest, projection-path signature)``. The
  digest covers the exact request text (shipped query body, static
  context, marshalled parameter fragments), so a hit is only possible
  for a byte-identical request; the projection signature is kept
  explicit in the key so by-projection responses for different
  used/returned path sets never alias. On a hit the cached text is
  re-parsed by the consuming query, which gives it fresh fragment
  documents — node identity stays private per query, so concurrent
  readers never share mutable state.
* **document entries** — shipped-and-shredded documents, keyed by
  ``(requester, owner, document)``. A hit skips the serialise /
  network / shred charges of data shipping entirely.

Invalidation is conservative: :meth:`ResultCache.attach` hooks
``Peer.store``, and a store on *any* peer drops that peer's document
entries plus **all** response entries — a response from peer B may
transitively depend on documents shipped from peer A (nested ``execute
at``), so per-peer response invalidation would be unsound.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.obs.metrics import MetricsRegistry

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    from repro.system.federation import Federation, Peer
    from repro.xmldb.document import Document

#: Key of one response entry:
#: (dest scope, semantics, request digest, projection sig, shard epoch).
ResponseKey = tuple[str, str, str, tuple[str, ...], int]


def response_key(dest: str, semantics: str, request_xml: str,
                 used_paths: list[str] | None,
                 returned_paths: list[str] | None,
                 shard_epoch: int | None = None) -> ResponseKey:
    """Cache key for one round trip's response.

    ``semantics`` must be part of the key: the request XML carries no
    semantics marker (the handler receives it out-of-band), so by-value
    and by-fragment runs of the same query produce byte-identical
    requests whose responses use different wire formats.

    For cluster scatter calls ``dest`` is the logical shard identity
    (``collection#sN``, not the replica that served it — replicas hold
    identical fragments, so any replica's response serves all) and
    ``shard_epoch`` is the catalog membership epoch, so entries from
    before a repartition can never be served after it. Plain
    peer-to-peer calls use ``-1``.
    """
    digest = hashlib.sha256(request_xml.encode()).hexdigest()
    signature = tuple(
        [f"u:{p}" for p in used_paths or []]
        + [f"r:{p}" for p in returned_paths or []])
    return (dest, semantics, digest, signature,
            -1 if shard_epoch is None else shard_epoch)


@dataclass
class CacheStats:
    """Hit/miss accounting; ``saved_bytes`` is wire traffic avoided."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    invalidations: int = 0
    saved_bytes: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        lookups = self.lookups
        return self.hits / lookups if lookups else 0.0

    def as_dict(self) -> dict[str, object]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": self.hit_rate,
            "evictions": self.evictions,
            "invalidations": self.invalidations,
            "saved_bytes": self.saved_bytes,
        }


class ResultCache:
    """LRU response/document cache, safe for concurrent queries.

    Accounting lives as ``cache_*`` counters in a
    :class:`~repro.obs.metrics.MetricsRegistry` (pass the federation's
    to fold cache truth into its uniform snapshot; a private registry
    is created otherwise). :attr:`stats` stays as the point-in-time
    :class:`CacheStats` view existing callers read.
    """

    def __init__(self, max_responses: int = 256, max_documents: int = 32,
                 metrics: MetricsRegistry | None = None,
                 events=None):
        self.max_responses = max_responses
        self.max_documents = max_documents
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        #: A :class:`~repro.obs.events.EventLog`; invalidation sweeps
        #: emit into it when set (the engine wires the federation
        #: monitor's log through here).
        self.events = events
        self._hits = self.metrics.counter(
            "cache_hits_total", "result-cache lookups served")
        self._misses = self.metrics.counter(
            "cache_misses_total", "result-cache lookups missed")
        self._evictions = self.metrics.counter(
            "cache_evictions_total", "entries dropped by LRU bounds")
        self._invalidations = self.metrics.counter(
            "cache_invalidations_total", "entries dropped by store hooks")
        self._saved_bytes = self.metrics.counter(
            "cache_saved_bytes_total", "wire bytes avoided by hits")
        self._lock = threading.Lock()
        self._epoch = 0
        #: ResponseKey -> response XML text
        self._responses: OrderedDict[ResponseKey, str] = OrderedDict()
        #: (requester, owner, local_name) -> (Document, serialized bytes)
        self._documents: OrderedDict[tuple[str, str, str],
                                     tuple["Document", int]] = OrderedDict()
        #: id(peer) -> (peer, registered listener), for detach().
        self._attached: dict[int, tuple["Peer", object]] = {}

    def epoch(self) -> int:
        """The invalidation epoch. Capture it *before* computing a value
        and pass it to ``store_*``: if an invalidation lands in between,
        the store is discarded rather than re-populating the cache with
        data derived from pre-invalidation documents."""
        with self._lock:
            return self._epoch

    # -- responses ----------------------------------------------------------

    def lookup_response(self, key: ResponseKey,
                        request_bytes: int = 0) -> str | None:
        """The cached response text, or None. ``request_bytes`` sizes the
        request that a hit keeps off the wire (for ``saved_bytes``)."""
        with self._lock:
            text = self._responses.get(key)
            if text is None:
                self._misses.inc()
                return None
            self._responses.move_to_end(key)
            self._hits.inc()
            self._saved_bytes.inc(request_bytes + len(text.encode()))
            return text

    def store_response(self, key: ResponseKey, response_xml: str,
                       epoch: int | None = None) -> None:
        with self._lock:
            if epoch is not None and epoch != self._epoch:
                return  # stale: an invalidation raced the computation
            self._responses[key] = response_xml
            self._responses.move_to_end(key)
            while len(self._responses) > self.max_responses:
                self._responses.popitem(last=False)
                self._evictions.inc()

    # -- shipped documents --------------------------------------------------

    def lookup_document(self, requester: str, owner: str,
                        local_name: str) -> tuple["Document", int] | None:
        with self._lock:
            entry = self._documents.get((requester, owner, local_name))
            if entry is None:
                self._misses.inc()
                return None
            self._documents.move_to_end((requester, owner, local_name))
            self._hits.inc()
            self._saved_bytes.inc(entry[1])
            return entry

    def store_document(self, requester: str, owner: str, local_name: str,
                       document: "Document", size: int,
                       epoch: int | None = None) -> None:
        with self._lock:
            if epoch is not None and epoch != self._epoch:
                return  # stale: an invalidation raced the computation
            self._documents[(requester, owner, local_name)] = (document, size)
            self._documents.move_to_end((requester, owner, local_name))
            while len(self._documents) > self.max_documents:
                self._documents.popitem(last=False)
                self._evictions.inc()

    # -- invalidation -------------------------------------------------------

    def invalidate_peer(self, peer_name: str) -> None:
        """Called when ``peer_name`` (re)stores a document: drop its
        document entries and, conservatively, every response entry."""
        with self._lock:
            self._epoch += 1
            doomed = [key for key in self._documents if key[1] == peer_name]
            for key in doomed:
                del self._documents[key]
            dropped = len(doomed) + len(self._responses)
            self._responses.clear()
            if dropped:
                self._invalidations.inc(dropped)
        # Emit outside the lock: the event sink locks internally and
        # must never nest inside cache-internal critical sections.
        if dropped and self.events is not None:
            self.events.emit(
                "cache_invalidation",
                f"store on {peer_name} dropped {dropped} cache entries",
                severity="info", peer=peer_name, dropped=dropped)

    def attach(self, federation: "Federation") -> None:
        """Hook invalidation into every current peer's ``store`` (safe to
        call repeatedly and concurrently; new peers are picked up on the
        next call)."""
        # Snapshot first: submit() calls this while other threads may be
        # adding peers, and each peer must be claimed under the lock so
        # concurrent attaches never double-register a listener.
        for peer in list(federation.peers.values()):
            def listener(peer_name: str, _name: str) -> None:
                self.invalidate_peer(peer_name)

            # Register under the cache lock so a concurrent detach()
            # can never miss a listener claimed-but-not-yet-registered.
            # Lock order is cache -> peer everywhere (store() calls
            # listeners with the peer lock released), so no deadlock.
            with self._lock:
                if id(peer) in self._attached:
                    continue
                peer.on_store(listener)
                self._attached[id(peer)] = (peer, listener)

    def detach(self) -> None:
        """Unhook this cache from every peer it attached to — call when
        retiring a cache so long-lived federations don't accumulate
        dead invalidation listeners."""
        with self._lock:
            attached = list(self._attached.values())
            self._attached.clear()
        for peer, listener in attached:
            peer.remove_on_store(listener)

    # -- introspection ------------------------------------------------------

    @property
    def stats(self) -> CacheStats:
        """A point-in-time :class:`CacheStats` view of the ``cache_*``
        registry counters (the historical read path)."""
        return CacheStats(hits=self._hits.value,
                          misses=self._misses.value,
                          evictions=self._evictions.value,
                          invalidations=self._invalidations.value,
                          saved_bytes=self._saved_bytes.value)

    def __len__(self) -> int:
        with self._lock:
            return len(self._responses) + len(self._documents)

    def snapshot(self) -> dict[str, object]:
        with self._lock:
            return {
                "responses": len(self._responses),
                "documents": len(self._documents),
                **self.stats.as_dict(),
            }
