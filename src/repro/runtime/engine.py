"""The concurrent federation engine: a thread-pool scheduler over
:class:`~repro.system.federation.Federation`.

:class:`FederationEngine` turns the one-query-at-a-time simulator into
a runtime serving many queries at once:

* a worker pool executes queries concurrently (documents are immutable
  once stored, so evaluation is read-shared);
* **admission control** — a bounded semaphore caps in-flight queries;
  :meth:`submit` blocks once ``max_in_flight`` queries are queued or
  running, which is the back-pressure a production front door needs;
* **per-peer request queues** — the transport's per-peer concurrency
  gates bound how many exchanges hammer one peer at a time;
* a shared :class:`~repro.runtime.cache.ResultCache` (invalidated by
  ``Peer.store``) and a :class:`~repro.runtime.batching.BulkBatcher`
  that coalesces same-shape round trips across queries;
* a :class:`~repro.runtime.metrics.MetricsAggregator` recording every
  query for the fleet-level summary.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import Future, ThreadPoolExecutor
from threading import BoundedSemaphore
from typing import TYPE_CHECKING, Iterable

from repro.decompose import Strategy, strategy_label
from repro.runtime.batching import BulkBatcher
from repro.runtime.cache import ResultCache
from repro.runtime.metrics import MetricsAggregator, QueryRecord
from repro.runtime.transport import Transport

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    from repro.system.federation import Federation, RunResult


class EngineClosedError(RuntimeError):
    """submit() after shutdown()."""


class FederationEngine:
    """Concurrent query execution over one federation.

    Usage::

        engine = FederationEngine(federation, max_workers=8)
        futures = [engine.submit(query, at="local") for _ in range(32)]
        results = [f.result() for f in futures]
        print(engine.metrics.format_summary())
        engine.shutdown()

    ``cache=True`` (default) creates a :class:`ResultCache`; pass an
    instance to share one across engines, or ``False`` to disable.
    ``batch_window_s`` > 0 enables cross-query bulk coalescing.

    ``per_peer_concurrency`` reconfigures the gates of whichever
    transport this engine uses — by default the federation's shared
    one, so it also applies to standalone ``federation.run`` calls and
    to other engines on the same transport. Pass a private transport
    when that sharing is unwanted.

    ``scatter_parallelism`` is the cluster layer's admission knob: it
    caps how many shard calls one scatter fans out at once (configured
    on the federation's catalog, so it applies to every query routed
    through it). Worker threads × scatter fan-out bounds this engine's
    total concurrent exchanges; the per-peer gates still bound how many
    land on one replica.
    """

    def __init__(self, federation: "Federation", *,
                 max_workers: int = 8,
                 max_in_flight: int | None = None,
                 per_peer_concurrency: int | None = None,
                 scatter_parallelism: int | None = None,
                 transport: Transport | None = None,
                 cache: "ResultCache | bool" = True,
                 batch_window_s: float = 0.002,
                 metrics: MetricsAggregator | None = None):
        self.federation = federation
        if scatter_parallelism is not None:
            if federation.catalog is None:
                raise ValueError(
                    "scatter_parallelism requires a federation with an "
                    "attached cluster catalog")
            federation.catalog.max_scatter_parallelism = scatter_parallelism
        if transport is None:
            # NOTE: this shares (and, below, may configure) the
            # federation's own transport; standalone federation.run
            # calls then see the same per-peer gates and wire counters.
            transport = federation.transport
        if per_peer_concurrency is not None:
            transport.set_per_peer_concurrency(per_peer_concurrency)
        self.transport = transport
        self._owns_cache = cache is True
        if cache is True:
            # An engine-owned cache publishes its cache_* series into
            # the federation's registry, next to the wire_* truth, and
            # its invalidation sweeps into an attached fleet monitor's
            # event log.
            monitor = federation.monitor
            self.cache: ResultCache | None = ResultCache(
                metrics=federation.metrics,
                events=monitor.events if monitor is not None else None)
        elif cache is False:
            self.cache = None
        else:
            self.cache = cache
        self._in_flight = 0
        self._executing = 0
        self._in_flight_lock = threading.Lock()
        # A window is only worth paying when another query is actually
        # *executing* (not merely queued behind the worker pool): a
        # rider can only arrive from a concurrently running query.
        self.batcher = (BulkBatcher(window_s=batch_window_s,
                                    worth_waiting=lambda:
                                    self.executing > 1)
                        if batch_window_s > 0 else None)
        self.metrics = (metrics if metrics is not None
                        else MetricsAggregator(metrics=federation.metrics))
        self.max_in_flight = (max_in_flight if max_in_flight is not None
                              else 2 * max_workers)
        self._admission = BoundedSemaphore(self.max_in_flight)
        self._pool = ThreadPoolExecutor(
            max_workers=max_workers,
            thread_name_prefix="federation-engine")
        self._closed = False
        if self.cache is not None:
            self.cache.attach(federation)

    # -- lifecycle ----------------------------------------------------------

    def __enter__(self) -> "FederationEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

    def shutdown(self, wait: bool = True) -> None:
        self._closed = True
        self._pool.shutdown(wait=wait)
        if self._owns_cache and self.cache is not None:
            # Engine-private cache: unhook its invalidation listeners so
            # a long-lived federation doesn't fan out to dead caches.
            self.cache.detach()

    # -- submission ---------------------------------------------------------

    def submit(self, query: str, at: str,
               strategy: Strategy | str = Strategy.BY_PROJECTION,
               **run_kwargs) -> "Future[RunResult]":
        """Schedule one query; blocks while ``max_in_flight`` queries
        are already admitted (admission control), then returns a future
        for the :class:`RunResult`.

        ``strategy`` accepts the enum, a case-insensitive string alias,
        or ``"auto"`` (cost-based planning per query) — same contract
        as :meth:`Federation.run`; invalid names raise here, before a
        worker is occupied."""
        if self._closed:
            raise EngineClosedError("engine is shut down")
        strategy = Strategy.coerce(strategy)
        if self.cache is not None:
            # Pick up peers added since construction.
            self.cache.attach(self.federation)
        self._admission.acquire()
        with self._in_flight_lock:
            self._in_flight += 1
        try:
            future = self._pool.submit(self._run_one, query, at, strategy,
                                       run_kwargs)
        except BaseException:
            self._release_one()
            raise
        # A future cancelled while still queued never reaches _run_one,
        # so its admission slot must be released here instead.
        future.add_done_callback(
            lambda f: self._release_one() if f.cancelled() else None)
        return future

    @property
    def in_flight(self) -> int:
        """Queries admitted and not yet finished (running or queued)."""
        with self._in_flight_lock:
            return self._in_flight

    @property
    def executing(self) -> int:
        """Queries currently running on a worker thread."""
        with self._in_flight_lock:
            return self._executing

    def _release_one(self) -> None:
        with self._in_flight_lock:
            self._in_flight -= 1
        self._admission.release()

    def _finish_one(self) -> None:
        with self._in_flight_lock:
            self._executing -= 1
        self._release_one()

    def run_all(self, jobs: Iterable[tuple], *,
                strategy: Strategy = Strategy.BY_PROJECTION,
                return_exceptions: bool = False) -> list:
        """Submit every ``(query, at)`` (or ``(query, at, strategy)``)
        job and block until all finish; results come back in job order.
        """
        futures = []
        for job in jobs:
            if len(job) >= 3:
                query, at, job_strategy = job[0], job[1], job[2]
            else:
                query, at, job_strategy = job[0], job[1], strategy
            futures.append(self.submit(query, at, job_strategy))
        results = []
        for future in futures:
            if return_exceptions:
                error = future.exception()
                results.append(error if error is not None
                               else future.result())
            else:
                results.append(future.result())
        return results

    # -- worker body --------------------------------------------------------

    def _run_one(self, query: str, at: str, strategy: "Strategy | str",
                 run_kwargs: dict) -> "RunResult":
        started = time.perf_counter()
        label = strategy_label(strategy)
        monitor = self.federation.monitor
        if (monitor is not None and "trace" not in run_kwargs
                and monitor.should_sample_trace()):
            # The fleet monitor's sampling profiler: trace every Nth
            # query; an explicit trace= from the caller always wins.
            run_kwargs = {**run_kwargs, "trace": True}
        with self._in_flight_lock:
            self._executing += 1
        try:
            result = self.federation.run(
                query, at=at, strategy=strategy,
                transport=self.transport,
                result_cache=self.cache,
                batcher=self.batcher,
                **run_kwargs)
        except BaseException as exc:
            self.metrics.record(QueryRecord(
                started_at=started, finished_at=time.perf_counter(),
                stats=None, strategy=label, at=at,
                error=f"{type(exc).__name__}: {exc}"))
            raise
        finally:
            self._finish_one()
        self.metrics.record(QueryRecord(
            started_at=started, finished_at=time.perf_counter(),
            stats=result.stats, strategy=label, at=at,
            plan=(result.stats.plan.strategy
                  if result.stats.plan is not None else None)))
        return result

    # -- introspection ------------------------------------------------------

    def summary(self) -> dict[str, object]:
        """Metrics, wire truth, cache and batching state in one dict,
        plus the federation registry's uniform ``snapshot()``."""
        out: dict[str, object] = {"metrics": self.metrics.summary(),
                                  "wire": self.transport.wire_summary(),
                                  "registry":
                                      self.federation.metrics.snapshot()}
        if self.cache is not None:
            out["cache"] = self.cache.snapshot()
        if self.batcher is not None:
            out["batching"] = self.batcher.snapshot()
        return out
