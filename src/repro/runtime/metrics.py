"""Aggregating per-query :class:`~repro.net.stats.RunStats` into
runtime-level metrics: throughput, latency percentiles, bytes per peer,
and cache effectiveness.

The seed measures one query at a time; a concurrent runtime needs the
fleet view. :class:`MetricsAggregator` collects one
:class:`QueryRecord` per completed (or failed) query and reduces them
into the numbers ``benchmarks/bench_throughput.py`` sweeps: queries/sec
over the busy interval, wall-clock p50/p95/p99, simulated-time totals,
and transferred bytes.

The aggregator is now a *consumer* of the unified
:class:`~repro.obs.metrics.MetricsRegistry`: each recorded query also
feeds the ``query_*`` series (latency histogram, per-plan counters,
byte totals), so ``registry.snapshot()`` carries the fleet view next
to the transport's ``wire_*`` and the cache's ``cache_*`` truth.
:func:`percentile` is re-exported from its canonical home in
:mod:`repro.obs.metrics` for existing importers.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

from repro.net.stats import RunStats
from repro.obs.metrics import MetricsRegistry, percentile

__all__ = ["percentile", "QueryRecord", "MetricsAggregator"]


@dataclass
class QueryRecord:
    """One query's life in the runtime."""

    started_at: float            # perf_counter timestamps
    finished_at: float
    stats: RunStats | None       # None when the query failed
    strategy: str = ""           # requested ("auto" stays "auto")
    at: str = ""
    error: str | None = None
    plan: str | None = None      # physical plan label the run executed

    @property
    def wall_s(self) -> float:
        return self.finished_at - self.started_at

    @property
    def ok(self) -> bool:
        return self.error is None


class MetricsAggregator:
    """Thread-safe accumulator of :class:`QueryRecord`, publishing the
    ``query_*`` series into ``metrics`` (private registry if omitted)."""

    def __init__(self, metrics: MetricsRegistry | None = None):
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.records: list[QueryRecord] = []
        self._lock = threading.Lock()
        self._completed = self.metrics.counter(
            "query_completed_total", "queries that finished cleanly")
        self._failed = self.metrics.counter(
            "query_failed_total", "queries that raised")
        self._latency = self.metrics.histogram(
            "query_latency_seconds", "wall-clock seconds per query")
        self._bytes = self.metrics.counter(
            "query_transferred_bytes_total",
            "Figure 7 bytes summed over completed queries")
        self._sim_s = self.metrics.counter(
            "query_simulated_seconds_total",
            "Figure 8 simulated seconds summed over completed queries")
        self._plans = self.metrics.counter(
            "query_plans_total", "executions per physical plan label",
            ("plan",))

    def record(self, record: QueryRecord) -> None:
        with self._lock:
            self.records.append(record)
        if record.ok and record.stats is not None:
            self._completed.inc()
            self._latency.observe(record.wall_s)
            self._bytes.inc(record.stats.total_transferred_bytes)
            self._sim_s.inc(record.stats.times.total)
            if record.plan is not None:
                self._plans.labels(record.plan).inc()
        else:
            self._failed.inc()

    # -- reductions ---------------------------------------------------------

    def summary(self) -> dict[str, object]:
        """The fleet view over everything recorded so far."""
        with self._lock:
            records = list(self.records)
        completed = [r for r in records if r.ok and r.stats is not None]
        failed = len(records) - len(completed)
        latencies = [r.wall_s for r in completed]
        busy_s = 0.0
        if records:
            busy_s = (max(r.finished_at for r in records)
                      - min(r.started_at for r in records))
        throughput = len(completed) / busy_s if busy_s > 0 else 0.0
        total_bytes = sum(r.stats.total_transferred_bytes
                          for r in completed)
        simulated_s = sum(r.stats.times.total for r in completed)
        cache_hits = sum(r.stats.cache_hits for r in completed)
        cache_saved = sum(r.stats.cache_saved_bytes for r in completed)
        scatter_shards = sum(r.stats.scatter_shards for r in completed)
        failovers = sum(r.stats.failovers for r in completed)
        retries = sum(r.stats.retries for r in completed)
        partial_shards = sum(r.stats.partial_shards for r in completed)
        per_collection = self._per_collection(completed)
        plans: dict[str, int] = {}
        for record in completed:
            if record.plan is not None:
                plans[record.plan] = plans.get(record.plan, 0) + 1
        return {
            "queries": len(completed),
            "failed": failed,
            "busy_s": busy_s,
            "throughput_qps": throughput,
            "latency_s": {
                "p50": percentile(latencies, 50),
                "p95": percentile(latencies, 95),
                "p99": percentile(latencies, 99),
                "max": max(latencies) if latencies else 0.0,
            },
            "total_transferred_bytes": total_bytes,
            "simulated_time_s": simulated_s,
            "cache_hits": cache_hits,
            "cache_saved_bytes": cache_saved,
            "scatter_shards": scatter_shards,
            "failovers": failovers,
            "retries": retries,
            "partial_shards": partial_shards,
            "per_collection": per_collection,
            "plans": plans,
        }

    @staticmethod
    def _per_collection(completed: list[QueryRecord]) -> dict[str, dict]:
        """Cluster accounting re-attributed per collection: the global
        ``failovers`` / ``shards_skipped`` totals say *that* the fleet
        struggled; this view (parsed from the router's per-shard keys,
        ``"collection#sN"``) says *where*, so the console and SLO rules
        can name the collection. Sorted for deterministic export."""
        per_collection: dict[str, dict] = {}
        for record in completed:
            for shard_key, entry in record.stats.per_shard.items():
                collection = shard_key.rsplit("#s", 1)[0]
                agg = per_collection.get(collection)
                if agg is None:
                    agg = per_collection[collection] = {
                        "shard_calls": 0, "failovers": 0,
                        "shards_skipped": 0, "bytes": 0,
                        "cache_hits": 0}
                agg["shard_calls"] += 1
                agg["failovers"] += entry.get("failovers", 0)
                # "skips" is the merge-safe numeric; fall back to the
                # boolean flag for entries from before it existed.
                agg["shards_skipped"] += entry.get(
                    "skips", int(bool(entry.get("skipped"))))
                agg["bytes"] += entry.get("bytes", 0)
                agg["cache_hits"] += entry.get("cache_hits", 0)
        return dict(sorted(per_collection.items()))

    def format_summary(self) -> str:
        """A short human-readable block for examples and benchmarks."""
        summary = self.summary()
        latency = summary["latency_s"]
        lines = [
            f"queries     : {summary['queries']} completed, "
            f"{summary['failed']} failed",
            f"throughput  : {summary['throughput_qps']:.1f} queries/s "
            f"over {summary['busy_s'] * 1000:.1f} ms",
            f"latency     : p50 {latency['p50'] * 1000:.2f} ms | "
            f"p95 {latency['p95'] * 1000:.2f} ms | "
            f"p99 {latency['p99'] * 1000:.2f} ms",
            f"transferred : {summary['total_transferred_bytes']} bytes "
            f"({summary['simulated_time_s'] * 1000:.2f} ms simulated)",
            f"cache       : {summary['cache_hits']} hits, "
            f"{summary['cache_saved_bytes']} bytes saved",
        ]
        if summary["scatter_shards"] or summary["failovers"]:
            lines.append(
                f"cluster     : {summary['scatter_shards']} shard calls, "
                f"{summary['failovers']} failovers")
            for name, agg in summary["per_collection"].items():
                lines.append(
                    f"  {name}: {agg['shard_calls']} shard calls, "
                    f"{agg['failovers']} failovers, "
                    f"{agg['shards_skipped']} skipped")
        return "\n".join(lines)
