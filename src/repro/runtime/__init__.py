"""Concurrent multi-query runtime on top of the federation simulator.

The seed executes one federated query at a time; this package turns it
into a runtime that serves many queries concurrently over shared peers:

* :mod:`repro.runtime.transport` — the wire logic of a round trip,
  extracted from the federation into a pluggable :class:`Transport`
  (in-process loopback, or a simulated wire with real latency/faults);
* :mod:`repro.runtime.engine` — :class:`FederationEngine`, a
  thread-pool scheduler with admission control and per-peer capacity
  gates;
* :mod:`repro.runtime.cache` — a projection-aware result/fragment
  cache shared across queries, invalidated by ``Peer.store``;
* :mod:`repro.runtime.batching` — cross-query Bulk-RPC coalescing,
  extending the paper's bulk idea across query boundaries;
* :mod:`repro.runtime.metrics` — throughput / latency-percentile /
  cache aggregation across queries.
"""

from repro.runtime.batching import BulkBatcher
from repro.runtime.cache import CacheStats, ResultCache
from repro.runtime.engine import EngineClosedError, FederationEngine
from repro.runtime.metrics import MetricsAggregator, QueryRecord, percentile
from repro.runtime.transport import (Exchange, FaultInjectedError,
                                     FaultPlan, LoopbackTransport,
                                     PeerDownError, RequestTimeoutError,
                                     RetryPolicy, SimulatedTransport,
                                     Transport)

__all__ = [
    "BulkBatcher",
    "CacheStats", "ResultCache",
    "EngineClosedError", "FederationEngine",
    "MetricsAggregator", "QueryRecord", "percentile",
    "Exchange", "FaultInjectedError", "FaultPlan", "LoopbackTransport",
    "PeerDownError", "RequestTimeoutError", "RetryPolicy",
    "SimulatedTransport", "Transport",
]
