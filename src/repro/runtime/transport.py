"""Pluggable wire transports: the serialise/ship/deserialise slice of a
round trip, extracted from ``_Run._round_trip`` / ``_ship_document``.

A :class:`Transport` owns everything between "the request message is
built" and "the parsed response is back": serialising both messages to
their SOAP-style XML text, charging :class:`~repro.net.costmodel.CostModel`
time into the caller's :class:`~repro.net.stats.RunStats`, and keeping
federation-wide wire truth (bytes/messages/in-flight per peer) that
survives across queries — the ground truth the engine's metrics
report. That truth now lives as ``wire_*`` series in a
:class:`~repro.obs.metrics.MetricsRegistry` (pass the federation's to
share one read path; standalone transports get a private registry),
and every cost-model charge is mirrored onto the caller's bound trace
span via :meth:`RunStats.charge_span`, so traced runs see the
serialize/network/shred components on the exact span doing the wire
work.

Two implementations ship:

* :class:`LoopbackTransport` — in-process, no wall-clock delay; the
  seed's behaviour, byte-for-byte.
* :class:`SimulatedTransport` — additionally *spends wall-clock time*
  proportional to the simulated network time (scaled by
  ``time_scale``) and can inject extra latency and faults from a
  seeded RNG, so concurrency experiments see a realistic wire.

Transports are deliberately ignorant of query evaluation: the peer-side
work arrives as a ``handle`` callable (a bound
:meth:`~repro.xrpc.peer.RequestHandler.handle`), which keeps this module
free of any dependency on :mod:`repro.system`.
"""

from __future__ import annotations

import random
import threading
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable

from repro.errors import (
    NetworkError, PeerUnavailableError, TransientNetworkError,
)
from repro.net.costmodel import CostModel
from repro.net.stats import RunStats
from repro.obs.metrics import MetricsRegistry
from repro.xrpc.messages import RequestMessage, ResponseMessage

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    from repro.system.federation import Peer


class FaultInjectedError(TransientNetworkError):
    """A transport-level fault injected by :class:`SimulatedTransport`.

    Transient by definition: the fault plan failed *this transmission*,
    not the peer, so the router's retry budget applies before failover.
    """


class RequestTimeoutError(TransientNetworkError):
    """One transmission exceeded :attr:`Transport.request_timeout_s`.

    The caller waited out the timeout and gave up; the peer may well be
    healthy-but-slow, so the error is transient (retry budget applies).
    Carries the injected+simulated delay that tripped the limit.
    """

    def __init__(self, message: str, peer: str | None = None,
                 attempt: int | None = None,
                 delay_s: float = 0.0, timeout_s: float = 0.0):
        super().__init__(message, peer=peer, attempt=attempt)
        self.delay_s = delay_s
        self.timeout_s = timeout_s


class PeerDownError(PeerUnavailableError):
    """The destination peer was killed via :meth:`Transport.kill_peer`
    (the cluster layer's replica-failure drill)."""


@dataclass(frozen=True)
class RetryPolicy:
    """Retry budget for *transient* wire faults (injected faults,
    per-attempt timeouts) — distinct from :class:`PeerDownError`
    failover, which switches replica immediately.

    ``attempts`` bounds tries per replica (including the first);
    ``budget`` bounds total retries one logical call may spend across
    all of a shard's replicas, so a call cannot burn ``attempts ×
    replicas`` tries under a fault storm. Backoff is exponential
    (``base_backoff_s * 2^retry`` capped at ``max_backoff_s``) with
    up to ``jitter`` fraction subtracted from a seeded
    ``random.Random`` — deterministic per call site, never the module
    global.
    """

    attempts: int = 3
    budget: int = 8
    base_backoff_s: float = 0.0
    max_backoff_s: float = 0.050
    jitter: float = 0.5
    seed: int = 20090329

    def __post_init__(self) -> None:
        if self.attempts < 1:
            raise ValueError(f"attempts {self.attempts} must be >= 1")
        if self.budget < 0:
            raise ValueError(f"budget {self.budget} must be >= 0")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError(f"jitter {self.jitter} must be in [0, 1]")
        if self.base_backoff_s < 0 or self.max_backoff_s < 0:
            raise ValueError("backoff seconds must be >= 0")

    def backoff_s(self, retry_index: int, rng: random.Random) -> float:
        """Sleep before retry ``retry_index`` (0-based): exponential,
        capped, jittered downward so synchronized retries spread out."""
        if self.base_backoff_s <= 0.0:
            return 0.0
        base = min(self.max_backoff_s,
                   self.base_backoff_s * (2 ** retry_index))
        if self.jitter <= 0.0:
            return base
        return base * (1.0 - self.jitter * rng.random())


@dataclass
class Exchange:
    """One completed request/response interaction on the wire."""

    dest: str
    request_xml: str
    response_xml: str
    response: ResponseMessage

    @property
    def request_bytes(self) -> int:
        return len(self.request_xml.encode())

    @property
    def response_bytes(self) -> int:
        return len(self.response_xml.encode())


class Transport:
    """Base transport: serialise, charge the cost model, deliver.

    ``per_peer_concurrency`` bounds how many exchanges may be in flight
    against one destination peer at a time — the runtime's per-peer
    request queue (excess callers block on the peer's semaphore in FIFO
    arrival order). ``metrics`` is the registry the ``wire_*`` series
    register in (a private one when omitted, so standalone transports
    keep exact counts in tests).
    """

    def __init__(self, cost_model: CostModel | None = None,
                 per_peer_concurrency: int | None = None,
                 metrics: MetricsRegistry | None = None):
        self.cost_model = cost_model if cost_model is not None else CostModel()
        self.per_peer_concurrency = per_peer_concurrency
        self._lock = threading.Lock()
        self._gates: dict[str, threading.BoundedSemaphore] = {}
        self._down: set[str] = set()
        #: Extra wall-clock latency injected per transmission to a peer
        #: (:meth:`degrade_peer` — the "degrading, not dead" drill).
        self._slow: dict[str, float] = {}
        #: A :class:`~repro.obs.events.EventLog` installed by a fleet
        #: monitor; peer lifecycle transitions emit into it when set.
        self.events = None
        #: Per-attempt timeout: a transmission whose injected+simulated
        #: delay exceeds this raises :class:`RequestTimeoutError` after
        #: waiting out the timeout (None ⇒ callers wait forever — the
        #: pre-PR-9 behaviour).
        self.request_timeout_s: float | None = None
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._wire_messages = self.metrics.counter(
            "wire_messages_total", "delivered SOAP messages", ("peer",))
        self._wire_message_bytes = self.metrics.counter(
            "wire_message_bytes_total", "delivered message bytes", ("peer",))
        self._wire_document_bytes = self.metrics.counter(
            "wire_document_bytes_total", "shipped document bytes", ("peer",))
        self._wire_in_flight = self.metrics.gauge(
            "wire_in_flight", "exchanges currently on the wire", ("peer",))

    # -- wire counters ------------------------------------------------------

    def _count_message(self, peer_name: str, size: int) -> None:
        self._wire_messages.labels(peer_name).inc()
        self._wire_message_bytes.labels(peer_name).inc(size)

    def _count_document(self, peer_name: str, size: int) -> None:
        self._wire_document_bytes.labels(peer_name).inc(size)

    def wire_summary(self) -> dict[str, dict[str, int]]:
        """Bytes/messages per peer, across every query this transport
        served (documents count against their owner peer). Read from
        the ``wire_*`` registry series — the same numbers
        ``metrics.snapshot()`` exports."""
        messages = self._wire_messages.series()
        message_bytes = self._wire_message_bytes.series()
        document_bytes = self._wire_document_bytes.series()
        names = {key[0] for key in messages}
        names.update(key[0] for key in message_bytes)
        names.update(key[0] for key in document_bytes)

        def value(series: dict, name: str) -> int:
            child = series.get((name,))
            return child.value if child is not None else 0

        out: dict[str, dict[str, int]] = {}
        for name in sorted(names):
            mbytes = value(message_bytes, name)
            dbytes = value(document_bytes, name)
            out[name] = {"messages": value(messages, name),
                         "message_bytes": mbytes,
                         "document_bytes": dbytes,
                         "total_bytes": mbytes + dbytes}
        return out

    # -- live load & peer health --------------------------------------------

    def _enter_peer(self, peer_name: str) -> None:
        self._wire_in_flight.labels(peer_name).inc()

    def _exit_peer(self, peer_name: str) -> None:
        self._wire_in_flight.labels(peer_name).dec()

    def peer_load(self, peer_name: str) -> tuple[int, int]:
        """``(in-flight exchanges, total bytes served)`` for one peer —
        the live signal the cluster router ranks replicas by. Uses
        non-creating reads so load probes never mint zero series."""
        gauge = self._wire_in_flight.get(peer_name)
        mbytes = self._wire_message_bytes.get(peer_name)
        dbytes = self._wire_document_bytes.get(peer_name)
        total = ((mbytes.value if mbytes is not None else 0)
                 + (dbytes.value if dbytes is not None else 0))
        return (int(gauge.value) if gauge is not None else 0, total)

    def peer_loads(self) -> dict[str, tuple[int, int]]:
        """One :meth:`peer_load` snapshot per peer ever contacted."""
        names = {key[0] for key in self._wire_in_flight.series()}
        names.update(key[0] for key in self._wire_message_bytes.series())
        names.update(key[0] for key in self._wire_document_bytes.series())
        return {name: self.peer_load(name) for name in names}

    def kill_peer(self, peer_name: str) -> None:
        """Make every future transmission to ``peer_name`` raise
        :class:`PeerDownError` — the deterministic way to drill replica
        failover (contrast with :class:`SimulatedTransport`'s random
        fault plan)."""
        with self._lock:
            was_down = peer_name in self._down
            self._down.add(peer_name)
        if self.events is not None and not was_down:
            self.events.emit("peer_down",
                             f"peer {peer_name} killed on the wire",
                             severity="error", peer=peer_name)

    def revive_peer(self, peer_name: str) -> None:
        with self._lock:
            was_down = peer_name in self._down
            self._down.discard(peer_name)
        if self.events is not None and was_down:
            self.events.emit("peer_up", f"peer {peer_name} revived",
                             severity="info", peer=peer_name)

    def is_down(self, peer_name: str) -> bool:
        with self._lock:
            return peer_name in self._down

    def degrade_peer(self, peer_name: str,
                     extra_latency_s: float) -> None:
        """Inject fixed wall-clock latency into every transmission to
        ``peer_name`` — the *degrading* (not dead) replica drill: the
        peer keeps answering correctly, only slower, so nothing fails
        over; catching it is the health detector's job."""
        if extra_latency_s < 0:
            raise ValueError(
                f"extra_latency_s {extra_latency_s} must be >= 0")
        with self._lock:
            self._slow[peer_name] = extra_latency_s
        if self.events is not None:
            self.events.emit(
                "peer_degraded",
                f"peer {peer_name} degraded: "
                f"+{extra_latency_s * 1000:.1f} ms per transmission",
                severity="warning", peer=peer_name,
                extra_latency_s=extra_latency_s)

    def restore_peer(self, peer_name: str) -> None:
        """Remove injected degradation latency (no-op if absent)."""
        with self._lock:
            was_slow = self._slow.pop(peer_name, None) is not None
        if self.events is not None and was_slow:
            self.events.emit("peer_restored",
                             f"peer {peer_name} latency restored",
                             severity="info", peer=peer_name)

    # -- per-peer admission -------------------------------------------------

    def set_per_peer_concurrency(self, limit: int | None) -> None:
        """Change the per-peer capacity, rebuilding the gates so peers
        already contacted pick up the new limit (in-flight transmissions
        finish under the gate they acquired)."""
        with self._lock:
            self.per_peer_concurrency = limit
            self._gates.clear()

    def _gate(self, peer_name: str) -> threading.BoundedSemaphore | None:
        if self.per_peer_concurrency is None:
            return None
        with self._lock:
            gate = self._gates.get(peer_name)
            if gate is None:
                gate = threading.BoundedSemaphore(self.per_peer_concurrency)
                self._gates[peer_name] = gate
        return gate

    # -- hooks for simulated wires ------------------------------------------

    def set_request_timeout(self, timeout_s: float | None) -> None:
        """Set (or clear) the per-attempt timeout."""
        if timeout_s is not None and timeout_s <= 0:
            raise ValueError(f"timeout_s {timeout_s} must be > 0")
        self.request_timeout_s = timeout_s

    def _transmit(self, peer_name: str, size: int) -> None:
        """Called once per message/document put on the wire; subclasses
        may sleep or raise here."""

    def _wire_delay(self, peer_name: str, size: int) -> float:
        """Wall-clock seconds this transmission will spend on the wire
        beyond injected degradation (simulated wires override)."""
        return 0.0

    def _gated_transmit(self, peer_name: str, size: int) -> None:
        """One transmission under the peer's capacity gate. The gate
        covers only the wire slice — never remote evaluation, which may
        re-enter the transport for other peers (holding a gate across
        ``handle`` would deadlock two queries shipping in opposite
        directions)."""
        if self.is_down(peer_name):
            raise PeerDownError(f"peer {peer_name!r} is down "
                                f"({size} bytes undeliverable)",
                                peer=peer_name)
        gate = self._gate(peer_name)
        if gate is not None:
            gate.acquire()
        try:
            delay = 0.0
            if self._slow:
                # Lock-free read: a racing degrade/restore only skews
                # the injected delay of in-flight transmissions.
                delay = self._slow.get(peer_name) or 0.0
            delay += self._wire_delay(peer_name, size)
            # Faults fire before any waiting: a dropped transmission
            # costs the caller nothing but the retry.
            self._transmit(peer_name, size)
            timeout = self.request_timeout_s
            if timeout is not None and delay > timeout:
                # The caller waits out the timeout, then gives up —
                # the transmission never completes.
                time.sleep(timeout)
                raise RequestTimeoutError(
                    f"transmission of {size} bytes to {peer_name!r} "
                    f"timed out after {timeout * 1000:.1f} ms "
                    f"(wire delay {delay * 1000:.1f} ms)",
                    peer=peer_name, delay_s=delay, timeout_s=timeout)
            if delay > 0:
                time.sleep(delay)
        finally:
            if gate is not None:
                gate.release()

    def probe(self, peer_name: str, nbytes: int = 64) -> float:
        """One heartbeat-sized transmission to ``peer_name``, returning
        its wall-clock seconds. Raises exactly what real traffic would
        (:class:`PeerDownError`, :class:`FaultInjectedError`,
        :class:`RequestTimeoutError`), so a failure detector probing
        through this sees the same wire queries see. Probes skip the
        ``wire_*`` delivered-traffic counters — heartbeats are not
        workload."""
        started = time.perf_counter()
        self._gated_transmit(peer_name, nbytes)
        return time.perf_counter() - started

    # -- the two wire operations --------------------------------------------

    def charge_message(self, stats: RunStats, size: int) -> None:
        model = self.cost_model
        stats.record_message(size)
        codec_s = model.serialize_time(size) + model.deserialize_time(size)
        network_s = model.network_time(size)
        stats.times.serialize += codec_s
        stats.times.network += network_s
        stats.charge_span("serialize", codec_s)
        stats.charge_span("network", network_s, size)

    def exchange(self, peer: "Peer", request: RequestMessage,
                 handle: Callable[[RequestMessage], ResponseMessage],
                 stats: RunStats,
                 request_xml: str | None = None) -> Exchange:
        """Ship ``request`` to ``peer``, run ``handle`` there, ship the
        response back. Both directions are real XML text, re-parsed on
        arrival, exactly as the seed did inline. Callers that already
        serialised the request (for cache keys) pass ``request_xml`` to
        avoid a second ``to_xml`` of the full fragment preamble."""
        if self.is_down(peer.name):
            # Fail before charging: a failover retry would otherwise
            # double-count the undelivered request in the caller's
            # stats. (Mid-transmission faults do leave their charges —
            # those bytes were genuinely attempted.)
            raise PeerDownError(f"peer {peer.name!r} is down",
                                peer=peer.name)
        if request_xml is None:
            request_xml = request.to_xml()
        request_bytes = len(request_xml.encode())
        self.charge_message(stats, request_bytes)

        self._enter_peer(peer.name)
        try:
            self._gated_transmit(peer.name, request_bytes)
            # Wire counters record delivered traffic only — count after
            # the transmit so injected faults don't inflate them.
            self._count_message(peer.name, request_bytes)
            response = handle(RequestMessage.from_xml(request_xml))
            response_xml = response.to_xml()
            response_bytes = len(response_xml.encode())
            self._gated_transmit(peer.name, response_bytes)
        finally:
            self._exit_peer(peer.name)

        self.charge_message(stats, response_bytes)
        self._count_message(peer.name, response_bytes)
        return Exchange(dest=peer.name, request_xml=request_xml,
                        response_xml=response_xml,
                        response=ResponseMessage.from_xml(response_xml))

    def fetch_document(self, owner: "Peer", local_name: str,
                       stats: RunStats) -> str:
        """Data shipping: serialise a document at its owner and move the
        text over the wire (the caller shreds it)."""
        if self.is_down(owner.name):
            # A dead owner can't even serialise: fail before charging.
            raise PeerDownError(f"peer {owner.name!r} is down",
                                peer=owner.name)
        text = owner.serialized(local_name)
        size = len(text.encode())
        model = self.cost_model
        stats.record_document_shipped(size)
        serialize_s = model.serialize_time(size)
        network_s = model.network_time(size)
        shred_s = model.shred_time(size)
        stats.times.serialize += serialize_s
        stats.times.network += network_s
        stats.times.shred += shred_s
        stats.charge_span("serialize", serialize_s)
        stats.charge_span("network", network_s, size)
        stats.charge_span("shred", shred_s)
        self._enter_peer(owner.name)
        try:
            self._gated_transmit(owner.name, size)
        finally:
            self._exit_peer(owner.name)
        self._count_document(owner.name, size)
        return text


class LoopbackTransport(Transport):
    """In-process transport preserving the seed's behaviour: costs are
    charged into :class:`RunStats` but no wall-clock time passes."""


@dataclass
class FaultPlan:
    """Deterministic fault injection: each transmission fails with
    probability ``rate``.

    Determinism contract (the chaos harness replays on it): by default
    the decision for a peer's *n*-th transmission is a pure function of
    ``(seed, peer, n)`` — each peer gets its own derived stream, so
    cross-peer thread interleaving cannot reshuffle which transmission
    eats which draw. Passing an explicit seeded ``rng``
    (:class:`random.Random`, the repo convention) instead draws from
    that shared generator under a lock — caller-managed determinism for
    single-threaded schedules. Module-global randomness is never used.
    """

    rate: float = 0.0
    seed: int = 20090329
    rng: random.Random | None = None
    _counts: dict[str, int] = field(init=False, repr=False,
                                    default_factory=dict)
    _lock: threading.Lock = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if not 0.0 <= self.rate <= 1.0:
            raise ValueError(f"fault rate {self.rate} must be in [0, 1]")
        self._lock = threading.Lock()

    def should_fail(self, peer_name: str = "") -> bool:
        if self.rate <= 0.0:
            return False
        with self._lock:
            if self.rng is not None:
                return self.rng.random() < self.rate
            ordinal = self._counts.get(peer_name, 0) + 1
            self._counts[peer_name] = ordinal
        # String seeds hash via SHA-512 (seed version 2): stable across
        # processes and PYTHONHASHSEED, unlike hash().
        draw = random.Random(
            f"{self.seed}|{peer_name}|{ordinal}").random()
        return draw < self.rate


class SimulatedTransport(Transport):
    """A wire that takes wall-clock time and can fail.

    ``time_scale`` maps simulated network seconds to slept wall-clock
    seconds (1.0 = real time; benchmarks use small fractions so sweeps
    stay fast). ``extra_latency_s`` adds fixed per-transmission delay on
    top of the cost model's, and ``fault_rate`` drops transmissions with
    a :class:`FaultInjectedError` per the :class:`FaultPlan` contract
    (``fault_rng`` injects an explicit shared generator instead of the
    per-peer derived streams).
    """

    def __init__(self, cost_model: CostModel | None = None,
                 per_peer_concurrency: int | None = None,
                 time_scale: float = 1.0,
                 extra_latency_s: float = 0.0,
                 fault_rate: float = 0.0,
                 fault_seed: int = 20090329,
                 fault_rng: random.Random | None = None,
                 metrics: MetricsRegistry | None = None):
        super().__init__(cost_model, per_peer_concurrency, metrics)
        self.time_scale = time_scale
        self.extra_latency_s = extra_latency_s
        self.faults = FaultPlan(rate=fault_rate, seed=fault_seed,
                                rng=fault_rng)

    def _transmit(self, peer_name: str, size: int) -> None:
        if self.faults.should_fail(peer_name):
            raise FaultInjectedError(
                f"injected fault transmitting {size} bytes to "
                f"{peer_name!r}", peer=peer_name)

    def _wire_delay(self, peer_name: str, size: int) -> float:
        return (self.cost_model.network_time(size) * self.time_scale
                + self.extra_latency_s)
