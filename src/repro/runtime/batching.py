"""Cross-query Bulk-RPC coalescing.

The paper's Bulk RPC merges the calls of one loop, in one query, into
one message (Section V). Under a concurrent runtime the same
amortisation applies *across* queries: when several in-flight queries
are about to ship the same function body to the same peer, their call
sets can ride in a single ``RequestMessage``.

:class:`BulkBatcher` implements this with a small batching window. The
first arrival for a batch key becomes the *leader*: it waits up to
``window_s`` for other queries to join (or until ``max_calls`` piles
up), then performs one merged exchange and hands each participant its
slice of the bulk response. Every participant re-serialises its slice
into a private response message — bulk identity within each query's
slice is preserved (one fragments preamble per message), and no parsed
fragment documents are shared across threads.

Mergeable means the batch key matches exactly: destination peer,
shipped query text, parameter names, call semantics, static-context
attributes, and the projection-path signature. Anything else would
change the remote evaluation and is never coalesced.
"""

from __future__ import annotations

import threading
from dataclasses import replace
from typing import Callable, Hashable

from repro.xrpc.messages import AttrRef, NodeRef, ResponseMessage

#: Raw calls as the evaluator hands them over: one list of
#: (param name, value sequence) pairs per call.
RawCalls = list[list[tuple[str, list]]]


def batch_key(dest: str, query: str, param_names: list[str],
              semantics: str, static_attrs: dict[str, str],
              used_paths: list[str] | None,
              returned_paths: list[str] | None) -> Hashable:
    """The identity under which concurrent round trips may merge."""
    return (dest, query, tuple(param_names), semantics,
            tuple(sorted(static_attrs.items())),
            None if used_paths is None else tuple(used_paths),
            None if returned_paths is None else tuple(returned_paths))


class _Batch:
    """One open batch: merged raw calls plus participant slices."""

    def __init__(self, calls: RawCalls):
        self.calls: RawCalls = list(calls)
        self.participants = 1
        self.closed = False
        self.full = threading.Event()
        self.done = threading.Event()
        self.response: ResponseMessage | None = None
        self.response_xml: str | None = None
        self.error: BaseException | None = None


class BulkBatcher:
    """Coalesces concurrent same-key round trips into one exchange."""

    def __init__(self, window_s: float = 0.002, max_calls: int = 64,
                 worth_waiting: Callable[[], bool] | None = None):
        self.window_s = window_s
        self.max_calls = max_calls
        #: Optional predicate consulted before a leader opens its
        #: window: the engine wires this to "another query is in
        #: flight", so a lone query never pays the window's latency.
        self.worth_waiting = worth_waiting
        self._lock = threading.Lock()
        self._pending: dict[Hashable, _Batch] = {}
        # Counters (under _lock): exchanges actually sent vs. round
        # trips requested, and how many rode along in a merged batch.
        self.exchanges = 0
        self.round_trips = 0
        self.coalesced = 0

    def execute(self, key: Hashable, calls: RawCalls,
                merged_exchange: Callable[[RawCalls],
                                          tuple[ResponseMessage, str]]
                ) -> str:
        """Run one round trip, possibly merged with concurrent ones.

        ``merged_exchange`` marshals a (possibly larger) raw call list,
        performs the actual wire exchange, and returns the parsed
        response together with its XML text; only the batch leader
        invokes it. Returns the participant's private response XML —
        its slice of the bulk results over the shared fragments
        preamble, or the leader's text verbatim when nobody coalesced.
        """
        with self._lock:
            self.round_trips += 1
            batch = self._pending.get(key)
            if batch is not None and not batch.closed:
                start = len(batch.calls)
                batch.calls.extend(calls)
                slot = (start, start + len(calls))
                batch.participants += 1
                self.coalesced += 1
                if len(batch.calls) >= self.max_calls:
                    batch.full.set()
                leader = False
            else:
                batch = _Batch(calls)
                slot = (0, len(calls))
                self._pending[key] = batch
                if len(batch.calls) >= self.max_calls:
                    batch.full.set()
                leader = True

        if leader:
            if (self.window_s > 0 and not batch.full.is_set()
                    and (self.worth_waiting is None
                         or self.worth_waiting())):
                batch.full.wait(self.window_s)
            with self._lock:
                batch.closed = True
                if self._pending.get(key) is batch:
                    del self._pending[key]
                merged = list(batch.calls)
                self.exchanges += 1
            try:
                batch.response, batch.response_xml = merged_exchange(merged)
            except BaseException as exc:
                batch.error = exc
                raise
            finally:
                batch.done.set()
        else:
            batch.done.wait()
            if batch.error is not None:
                # The shared exchange failed; every rider fails with it.
                raise batch.error

        if batch.participants == 1:
            # Nobody coalesced (the common case): the wire response IS
            # this participant's response — skip the split/re-serialise.
            assert batch.response_xml is not None
            return batch.response_xml
        response = batch.response
        assert response is not None
        return _split_response(response, slot).to_xml()

    def snapshot(self) -> dict[str, int | float]:
        with self._lock:
            return {
                "round_trips": self.round_trips,
                "exchanges": self.exchanges,
                "coalesced": self.coalesced,
                "merge_rate": (self.coalesced / self.round_trips
                               if self.round_trips else 0.0),
            }


def _split_response(response: ResponseMessage,
                    slot: tuple[int, int]) -> ResponseMessage:
    """One participant's private response: its result slice over only
    the fragments that slice references, with fragids renumbered.

    Dropping foreign fragments keeps a rider's response (and hence its
    per-query byte accounting and cache entry) close to what a solo
    exchange would have produced; fragments shared with other
    participants still carry the bulk union projection, which is the
    same over-approximation the paper's intra-query Bulk RPC makes.
    Relative fragment order is preserved, so nodeids are untouched.
    """
    results = response.results[slot[0]:slot[1]]
    used = sorted({item.fragid for items in results for item in items
                   if isinstance(item, (NodeRef, AttrRef))})
    remap = {old: new for new, old in enumerate(used, start=1)}
    if remap:
        results = [[replace(item, fragid=remap[item.fragid])
                    if isinstance(item, (NodeRef, AttrRef)) else item
                    for item in items]
                   for items in results]
    return ResponseMessage(
        results=results,
        fragments=[response.fragments[fragid - 1] for fragid in used])
