"""Recursive-descent parser for the XQuery subset of Table II.

Covers: a prolog of function/variable declarations, FLWOR expressions
(desugared at parse time into the XCore ``for``/``let``/``if``/
``order by`` core forms, as Section III prescribes), quantified
expressions, typeswitch, if/then/else, general and node comparisons,
arithmetic, node-set operators, path expressions with all thirteen
axes and positional/boolean predicates, computed *and* direct
constructors, function calls, and the XRPC ``execute at`` expression
(grammar rules 27-28, in both the real-XRPC form
``execute at {E} {fcn(args)}`` and the paper's presentation form
``execute at {E} function ($p := $q) {body}``).

Paths keep consecutive steps together in one :class:`PathExpr` — the
representation the paper's d-graph analysis assumes.
"""

from __future__ import annotations

from sys import intern as _intern

from repro.errors import UndefinedFunctionError, XQuerySyntaxError
from repro.xquery.ast import (
    ArithmeticExpr, ComparisonExpr, ConstructorExpr, ContextItemExpr,
    EmptySequence, Expr, ForExpr, FunCall, FunctionDecl, IfExpr, LetExpr,
    Literal, LogicalExpr, Module, NodeSetExpr, OrderByExpr, OrderSpec, Param,
    PathExpr, QuantifiedExpr, RangeExpr, SequenceExpr, Step, TypeswitchCase,
    TypeswitchExpr, UnaryExpr, VarRef, XRPCExpr, XRPCParam,
)
from repro.xquery.lexer import Lexer, Token, TokenType

_AXES = {
    "child", "attribute", "descendant", "descendant-or-self", "self",
    "parent", "ancestor", "ancestor-or-self", "following",
    "following-sibling", "preceding", "preceding-sibling",
}

_KIND_TESTS = {"node", "text", "comment"}

#: fn: builtins keep their local name; other prefixes are preserved.
_FN_PREFIX = "fn:"


def canonical_function_name(name: str) -> str:
    if name.startswith(_FN_PREFIX):
        return name[len(_FN_PREFIX):]
    return name


def parse_query(text: str) -> Module:
    """Parse a main module (prolog + body)."""
    return _Parser(text).parse_module()


def parse_expr(text: str) -> Expr:
    """Parse a single expression (no prolog)."""
    parser = _Parser(text)
    expr = parser.parse_expr()
    parser.expect_end()
    return expr


class _Parser:
    def __init__(self, text: str):
        self.lexer = Lexer(text)
        self.declared_functions: dict[tuple[str, int], FunctionDecl] = {}

    # -- token helpers -------------------------------------------------------

    def peek(self, ahead: int = 0) -> Token:
        return self.lexer.peek(ahead)

    def next(self) -> Token:
        return self.lexer.next()

    def error(self, message: str) -> XQuerySyntaxError:
        token = self.peek()
        return self.lexer.error(f"{message} (found {token.text!r})",
                                token.offset)

    def accept_symbol(self, *symbols: str) -> Token | None:
        if self.peek().is_symbol(*symbols):
            return self.next()
        return None

    def expect_symbol(self, symbol: str) -> Token:
        token = self.accept_symbol(symbol)
        if token is None:
            raise self.error(f"expected {symbol!r}")
        return token

    def accept_name(self, *names: str) -> Token | None:
        if self.peek().is_name(*names):
            return self.next()
        return None

    def expect_name(self, name: str) -> Token:
        token = self.accept_name(name)
        if token is None:
            raise self.error(f"expected keyword {name!r}")
        return token

    def expect_variable(self) -> str:
        token = self.peek()
        if token.type != TokenType.VARIABLE:
            raise self.error("expected a variable")
        self.next()
        return token.text

    def expect_end(self) -> None:
        if self.peek().type != TokenType.END:
            raise self.error("unexpected trailing content")

    # -- module & prolog -------------------------------------------------------

    def parse_module(self) -> Module:
        functions: list[FunctionDecl] = []
        lets: list[tuple[str, Expr]] = []
        while self.peek().is_name("declare"):
            second = self.peek(1)
            if second.is_name("function"):
                decl = self.parse_function_decl()
                functions.append(decl)
                self.declared_functions[(decl.name, len(decl.params))] = decl
            elif second.is_name("variable"):
                lets.append(self.parse_variable_decl())
            else:
                raise self.error("expected 'function' or 'variable'")
        body = self.parse_expr()
        self.expect_end()
        # Declared variables become outermost let-bindings.
        for name, value in reversed(lets):
            body = LetExpr(name, value, body)
        return Module(functions, body)

    def parse_function_decl(self) -> FunctionDecl:
        self.expect_name("declare")
        self.expect_name("function")
        name_token = self.peek()
        if name_token.type != TokenType.NAME:
            raise self.error("expected function name")
        self.next()
        name = canonical_function_name(name_token.text)
        self.expect_symbol("(")
        params: list[Param] = []
        if not self.peek().is_symbol(")"):
            while True:
                pname = self.expect_variable()
                seq_type = "item()*"
                if self.accept_name("as"):
                    seq_type = self.parse_sequence_type()
                params.append(Param(pname, seq_type))
                if not self.accept_symbol(","):
                    break
        self.expect_symbol(")")
        return_type = "item()*"
        if self.accept_name("as"):
            return_type = self.parse_sequence_type()
        self.expect_symbol("{")
        body = self.parse_expr()
        self.expect_symbol("}")
        self.expect_symbol(";")
        return FunctionDecl(name, params, return_type, body)

    def parse_variable_decl(self) -> tuple[str, Expr]:
        self.expect_name("declare")
        self.expect_name("variable")
        name = self.expect_variable()
        if self.accept_name("as"):
            self.parse_sequence_type()
        self.expect_symbol(":=")
        value = self.parse_expr_single()
        self.expect_symbol(";")
        return name, value

    def parse_sequence_type(self) -> str:
        """Parse a SequenceType into its source string."""
        parts: list[str] = []
        token = self.peek()
        if token.type != TokenType.NAME:
            raise self.error("expected a sequence type")
        parts.append(self.next().text)
        if self.accept_symbol("("):
            inner = []
            while not self.peek().is_symbol(")"):
                inner.append(self.next().text)
            self.expect_symbol(")")
            parts.append("(" + " ".join(inner) + ")")
        occurrence = self.peek()
        if occurrence.is_symbol("*", "+", "?"):
            # Only attach when it's an occurrence indicator, not the
            # start of the next expression; inside declarations the
            # next token after a type is ',', ')', '{', or 'return'.
            following = self.peek(1)
            if following.is_symbol(",", ")", "{") or following.is_name("return"):
                parts.append(self.next().text)
        return "".join(parts)

    # -- expressions -------------------------------------------------------------

    def parse_expr(self) -> Expr:
        """Expr := ExprSingle ("," ExprSingle)*"""
        first = self.parse_expr_single()
        if not self.peek().is_symbol(","):
            return first
        items = [first]
        while self.accept_symbol(","):
            items.append(self.parse_expr_single())
        return SequenceExpr(items)

    def parse_expr_single(self) -> Expr:
        token = self.peek()
        if token.type == TokenType.NAME:
            if token.text in ("for", "let") and self._clause_follows():
                return self.parse_flwor()
            if token.text in ("some", "every") and \
                    self.peek(1).type == TokenType.VARIABLE:
                return self.parse_quantified()
            if token.text == "if" and self.peek(1).is_symbol("("):
                return self.parse_if()
            if token.text == "typeswitch" and self.peek(1).is_symbol("("):
                return self.parse_typeswitch()
            if token.text == "execute" and self.peek(1).is_name("at"):
                return self.parse_execute_at()
        return self.parse_or()

    def _clause_follows(self) -> bool:
        return self.peek(1).type == TokenType.VARIABLE

    # -- FLWOR ----------------------------------------------------------------

    def parse_flwor(self) -> Expr:
        """Parse for/let clauses and desugar into core expressions."""
        clauses: list[tuple[str, str, str | None, Expr]] = []
        while True:
            token = self.peek()
            if token.is_name("for") and self._clause_follows():
                self.next()
                while True:
                    var = self.expect_variable()
                    pos_var = None
                    if self.accept_name("at"):
                        pos_var = self.expect_variable()
                    self.expect_name("in")
                    seq = self.parse_expr_single()
                    clauses.append(("for", var, pos_var, seq))
                    if not self.accept_symbol(","):
                        break
            elif token.is_name("let") and self._clause_follows():
                self.next()
                while True:
                    var = self.expect_variable()
                    if self.accept_name("as"):
                        self.parse_sequence_type()
                    self.expect_symbol(":=")
                    value = self.parse_expr_single()
                    clauses.append(("let", var, None, value))
                    if not self.accept_symbol(","):
                        break
            else:
                break

        where_cond: Expr | None = None
        if self.accept_name("where"):
            where_cond = self.parse_expr_single()

        order_specs: list[OrderSpec] | None = None
        if self.peek().is_name("order") and self.peek(1).is_name("by"):
            self.next()
            self.next()
            order_specs = []
            while True:
                key = self.parse_expr_single()
                ascending = True
                if self.accept_name("descending"):
                    ascending = False
                else:
                    self.accept_name("ascending")
                order_specs.append(OrderSpec(key, ascending))
                if not self.accept_symbol(","):
                    break
        elif self.peek().is_name("stable") and self.peek(1).is_name("order"):
            raise self.error("stable ordering is not supported")

        self.expect_name("return")
        body = self.parse_expr_single()

        if where_cond is not None:
            body = IfExpr(where_cond, body, EmptySequence())

        if order_specs is not None:
            for_clauses = [c for c in clauses if c[0] == "for"]
            if len(for_clauses) != 1:
                raise XQuerySyntaxError(
                    "order by requires exactly one for clause "
                    "in this XQuery subset")
            # Build inner lets (those after the for) into the body.
            index = next(i for i, c in enumerate(clauses) if c[0] == "for")
            kind, var, pos_var, seq = clauses[index]
            if pos_var is not None:
                raise XQuerySyntaxError(
                    "positional variables cannot combine with order by")
            for c_kind, c_var, _, c_value in reversed(clauses[index + 1:]):
                assert c_kind == "let"
                body = LetExpr(c_var, c_value, body)
            result: Expr = OrderByExpr(var, seq, order_specs, body)
            for c_kind, c_var, _, c_value in reversed(clauses[:index]):
                assert c_kind == "let"
                result = LetExpr(c_var, c_value, result)
            return result

        result = body
        for kind, var, pos_var, value in reversed(clauses):
            if kind == "for":
                result = ForExpr(var, value, result, pos_var)
            else:
                result = LetExpr(var, value, result)
        return result

    def parse_quantified(self) -> Expr:
        quantifier = self.next().text
        var = self.expect_variable()
        self.expect_name("in")
        seq = self.parse_expr_single()
        self.expect_name("satisfies")
        cond = self.parse_expr_single()
        return QuantifiedExpr(quantifier, var, seq, cond)

    def parse_if(self) -> Expr:
        self.expect_name("if")
        self.expect_symbol("(")
        cond = self.parse_expr()
        self.expect_symbol(")")
        self.expect_name("then")
        then_branch = self.parse_expr_single()
        self.expect_name("else")
        else_branch = self.parse_expr_single()
        return IfExpr(cond, then_branch, else_branch)

    def parse_typeswitch(self) -> Expr:
        self.expect_name("typeswitch")
        self.expect_symbol("(")
        operand = self.parse_expr()
        self.expect_symbol(")")
        cases: list[TypeswitchCase] = []
        while self.accept_name("case"):
            var = None
            if self.peek().type == TokenType.VARIABLE:
                var = self.expect_variable()
                self.expect_name("as")
            seq_type = self.parse_sequence_type()
            self.expect_name("return")
            body = self.parse_expr_single()
            cases.append(TypeswitchCase(var, seq_type, body))
        if not cases:
            raise self.error("typeswitch requires at least one case")
        self.expect_name("default")
        default_var = None
        if self.peek().type == TokenType.VARIABLE:
            default_var = self.expect_variable()
        self.expect_name("return")
        default_body = self.parse_expr_single()
        return TypeswitchExpr(operand, cases, default_var, default_body)

    # -- XRPC -----------------------------------------------------------------

    def parse_execute_at(self) -> Expr:
        """``execute at {dest} {fcn(args)}`` or the rule-27 anonymous
        function form ``execute at {dest} function ($p := $q) {body}``."""
        self.expect_name("execute")
        self.expect_name("at")
        self.expect_symbol("{")
        dest = self.parse_expr()
        self.expect_symbol("}")

        if self.accept_name("function"):
            self.expect_symbol("(")
            params: list[XRPCParam] = []
            if not self.peek().is_symbol(")"):
                while True:
                    pname = self.expect_variable()
                    self.expect_symbol(":=")
                    value = self.parse_expr_single()
                    params.append(XRPCParam(pname, value))
                    if not self.accept_symbol(","):
                        break
            self.expect_symbol(")")
            self.expect_symbol("{")
            body = self.parse_expr()
            self.expect_symbol("}")
            return XRPCExpr(dest, params, body)

        self.expect_symbol("{")
        call = self.parse_expr()
        self.expect_symbol("}")
        if not isinstance(call, FunCall):
            raise XQuerySyntaxError(
                "execute at body must be a single function application")
        decl = self.declared_functions.get((call.name, len(call.args)))
        if decl is None:
            raise UndefinedFunctionError(call.name, len(call.args))
        params = [XRPCParam(param.name, arg)
                  for param, arg in zip(decl.params, call.args)]
        return XRPCExpr(dest, params, decl.body)

    # -- operator precedence chain -------------------------------------------------

    def parse_or(self) -> Expr:
        left = self.parse_and()
        while self.peek().is_name("or"):
            self.next()
            left = LogicalExpr("or", left, self.parse_and())
        return left

    def parse_and(self) -> Expr:
        left = self.parse_comparison()
        while self.peek().is_name("and"):
            self.next()
            left = LogicalExpr("and", left, self.parse_comparison())
        return left

    def parse_comparison(self) -> Expr:
        left = self.parse_range()
        token = self.peek()
        if token.is_symbol("=", "!=", "<", "<=", ">", ">="):
            op = self.next().text
            return ComparisonExpr(op, left, self.parse_range())
        if token.is_symbol("<<", ">>"):
            op = self.next().text
            return ComparisonExpr(op, left, self.parse_range())
        if token.is_name("is"):
            self.next()
            return ComparisonExpr("is", left, self.parse_range())
        if token.is_name("eq", "ne", "lt", "le", "gt", "ge"):
            symbol = {"eq": "=", "ne": "!=", "lt": "<",
                      "le": "<=", "gt": ">", "ge": ">="}[self.next().text]
            return ComparisonExpr(symbol, left, self.parse_range())
        return left

    def parse_range(self) -> Expr:
        left = self.parse_additive()
        if self.peek().is_name("to"):
            self.next()
            return RangeExpr(left, self.parse_additive())
        return left

    def parse_additive(self) -> Expr:
        left = self.parse_multiplicative()
        while self.peek().is_symbol("+", "-"):
            op = self.next().text
            left = ArithmeticExpr(op, left, self.parse_multiplicative())
        return left

    def parse_multiplicative(self) -> Expr:
        left = self.parse_union()
        while True:
            token = self.peek()
            if token.is_symbol("*"):
                self.next()
                left = ArithmeticExpr("*", left, self.parse_union())
            elif token.is_name("div", "idiv", "mod"):
                op = self.next().text
                left = ArithmeticExpr(op, left, self.parse_union())
            else:
                return left

    def parse_union(self) -> Expr:
        left = self.parse_intersect_except()
        while self.peek().is_name("union") or self.peek().is_symbol("|"):
            self.next()
            left = NodeSetExpr("union", left, self.parse_intersect_except())
        return left

    def parse_intersect_except(self) -> Expr:
        left = self.parse_unary()
        while self.peek().is_name("intersect", "except"):
            op = self.next().text
            left = NodeSetExpr(op, left, self.parse_unary())
        return left

    def parse_unary(self) -> Expr:
        if self.peek().is_symbol("-", "+"):
            op = self.next().text
            return UnaryExpr(op, self.parse_unary())
        return self.parse_path()

    # -- paths -----------------------------------------------------------------

    def parse_path(self) -> Expr:
        input_expr = self.parse_step_or_primary()
        steps: list[Step] = []
        # Predicates directly on the primary become a self-step.
        primary_preds = self.parse_predicates()
        if primary_preds:
            steps.append(Step("self", "node()", primary_preds))
        while True:
            if self.accept_symbol("//"):
                steps.append(Step("descendant-or-self", "node()"))
                steps.append(self.parse_step())
            elif self.accept_symbol("/"):
                steps.append(self.parse_step())
            else:
                break
        if not steps:
            return input_expr
        return PathExpr(input_expr, steps)

    def parse_step(self) -> Step:
        token = self.peek()
        if token.is_symbol("@"):
            self.next()
            test = self.parse_node_test()
            return Step("attribute", test, self.parse_predicates())
        if token.is_symbol(".."):
            self.next()
            return Step("parent", "node()", self.parse_predicates())
        if token.is_symbol("."):
            self.next()
            return Step("self", "node()", self.parse_predicates())
        if token.type == TokenType.NAME and token.text in _AXES \
                and self.peek(1).is_symbol("::"):
            axis = self.next().text
            self.expect_symbol("::")
            test = self.parse_node_test()
            return Step(axis, test, self.parse_predicates())
        test = self.parse_node_test()
        return Step("child", test, self.parse_predicates())

    def parse_node_test(self) -> str:
        token = self.peek()
        if token.is_symbol("*"):
            self.next()
            return "*"
        if token.type != TokenType.NAME:
            raise self.error("expected a node test")
        name = self.next().text
        if name in _KIND_TESTS and self.peek().is_symbol("("):
            self.next()
            self.expect_symbol(")")
            return f"{name}()"
        # Interned to match the document store's interned name column:
        # name tests then compare by identity in the common case.
        return _intern(name)

    def parse_predicates(self) -> list[Expr]:
        predicates: list[Expr] = []
        while self.accept_symbol("["):
            predicates.append(self.parse_expr())
            self.expect_symbol("]")
        return predicates

    # -- primaries ---------------------------------------------------------------

    def parse_step_or_primary(self) -> Expr:
        token = self.peek()

        if token.type == TokenType.VARIABLE:
            self.next()
            return VarRef(token.text)
        if token.type == TokenType.STRING:
            self.next()
            return Literal(token.value)
        if token.type == TokenType.INTEGER or token.type == TokenType.DOUBLE:
            self.next()
            return Literal(token.value)

        if token.is_symbol("("):
            self.next()
            if self.accept_symbol(")"):
                return EmptySequence()
            inner = self.parse_expr()
            self.expect_symbol(")")
            return inner

        if token.is_symbol("<"):
            return self.parse_direct_constructor()

        if token.is_symbol("."):
            # Handled by parse_step for path tails; a standalone "."
            # is the context item.
            self.next()
            return ContextItemExpr()

        if token.is_symbol("@"):
            self.next()
            test = self.parse_node_test()
            return PathExpr(ContextItemExpr(), [Step("attribute", test)])

        if token.type == TokenType.NAME:
            return self.parse_named_primary()

        raise self.error("expected an expression")

    def parse_named_primary(self) -> Expr:
        token = self.peek()
        name = token.text

        # Computed constructors.
        if name in ("element", "attribute") and (
                self.peek(1).type == TokenType.NAME
                or self.peek(1).is_symbol("{")):
            return self.parse_computed_constructor()
        if name in ("document", "text") and self.peek(1).is_symbol("{"):
            kind = self.next().text
            self.expect_symbol("{")
            content = None if self.peek().is_symbol("}") else self.parse_expr()
            self.expect_symbol("}")
            return ConstructorExpr(kind, None, None, content)

        # Function call.
        if self.peek(1).is_symbol("(") and name not in _KIND_TESTS:
            self.next()
            self.expect_symbol("(")
            args: list[Expr] = []
            if not self.peek().is_symbol(")"):
                while True:
                    args.append(self.parse_expr_single())
                    if not self.accept_symbol(","):
                        break
            self.expect_symbol(")")
            return FunCall(canonical_function_name(name), args)

        # A bare name / kind test is a child step from the context item
        # (used inside predicates, e.g. "$s[tutor = ...]").
        if name in _AXES and self.peek(1).is_symbol("::"):
            step = self.parse_step()
            return PathExpr(ContextItemExpr(), [step])
        test = self.parse_node_test()
        return PathExpr(ContextItemExpr(), [Step("child", test)])

    def parse_computed_constructor(self) -> Expr:
        kind = self.next().text
        name: str | None = None
        name_expr: Expr | None = None
        if self.peek().type == TokenType.NAME:
            name = self.next().text
        else:
            self.expect_symbol("{")
            name_expr = self.parse_expr()
            self.expect_symbol("}")
        self.expect_symbol("{")
        content = None if self.peek().is_symbol("}") else self.parse_expr()
        self.expect_symbol("}")
        return ConstructorExpr(kind, name, name_expr, content)

    # -- direct constructors --------------------------------------------------------

    def parse_direct_constructor(self) -> Expr:
        """Parse ``<name attr="v">content</name>`` by raw scanning.

        The lexer is repositioned past the constructor afterwards.
        Embedded ``{expr}`` content is parsed recursively with a nested
        parser sharing this parser's function declarations.
        """
        open_token = self.expect_symbol("<")
        text = self.lexer.text
        pos = open_token.offset
        expr, end = self._scan_element(text, pos)
        self.lexer.reset(end)
        return expr

    def _scan_element(self, text: str, pos: int) -> tuple[Expr, int]:
        if text[pos] != "<":
            raise XQuerySyntaxError("expected '<'", pos)
        pos += 1
        name_start = pos
        while pos < len(text) and (text[pos].isalnum() or text[pos] in "-._:"):
            pos += 1
        name = text[name_start:pos]
        if not name:
            raise XQuerySyntaxError("expected element name", pos)

        content: list[Expr] = []
        # Attributes.
        while True:
            while pos < len(text) and text[pos] in " \t\r\n":
                pos += 1
            if pos >= len(text):
                raise XQuerySyntaxError("unterminated constructor", pos)
            if text.startswith("/>", pos):
                return ConstructorExpr("element", name, None,
                                       SequenceExpr(content) if content
                                       else None), pos + 2
            if text[pos] == ">":
                pos += 1
                break
            attr_start = pos
            while pos < len(text) and (text[pos].isalnum() or text[pos] in "-._:"):
                pos += 1
            attr_name = text[attr_start:pos]
            while pos < len(text) and text[pos] in " \t\r\n":
                pos += 1
            if pos >= len(text) or text[pos] != "=":
                raise XQuerySyntaxError(f"expected '=' after attribute "
                                        f"{attr_name!r}", pos)
            pos += 1
            while pos < len(text) and text[pos] in " \t\r\n":
                pos += 1
            quote = text[pos] if pos < len(text) else ""
            if quote not in "'\"":
                raise XQuerySyntaxError("expected quoted attribute value", pos)
            pos += 1
            value_parts: list[Expr] = []
            chunk_start = pos
            while pos < len(text) and text[pos] != quote:
                if text[pos] == "{":
                    if pos > chunk_start:
                        value_parts.append(Literal(text[chunk_start:pos]))
                    inner, pos = self._scan_embedded_expr(text, pos)
                    value_parts.append(inner)
                    chunk_start = pos
                else:
                    pos += 1
            if pos >= len(text):
                raise XQuerySyntaxError("unterminated attribute value", pos)
            if pos > chunk_start:
                value_parts.append(Literal(text[chunk_start:pos]))
            pos += 1
            attr_content: Expr | None
            if not value_parts:
                attr_content = None
            elif len(value_parts) == 1:
                attr_content = value_parts[0]
            else:
                attr_content = FunCall("concat", value_parts)
            content.append(
                ConstructorExpr("attribute", attr_name, None, attr_content))

        # Content until the matching close tag.
        chunk_start = pos
        while True:
            if pos >= len(text):
                raise XQuerySyntaxError(f"unterminated <{name}>", pos)
            ch = text[pos]
            if ch == "<":
                raw = text[chunk_start:pos]
                if raw.strip():
                    content.append(ConstructorExpr("text", None, None,
                                                   Literal(raw)))
                if text.startswith("</", pos):
                    pos += 2
                    close_start = pos
                    while pos < len(text) and text[pos] != ">":
                        pos += 1
                    close_name = text[close_start:pos].strip()
                    if close_name != name:
                        raise XQuerySyntaxError(
                            f"mismatched </{close_name}> for <{name}>", pos)
                    pos += 1
                    return ConstructorExpr(
                        "element", name, None,
                        SequenceExpr(content) if content else None), pos
                child, pos = self._scan_element(text, pos)
                content.append(child)
                chunk_start = pos
            elif ch == "{":
                raw = text[chunk_start:pos]
                if raw.strip():
                    content.append(ConstructorExpr("text", None, None,
                                                   Literal(raw)))
                inner, pos = self._scan_embedded_expr(text, pos)
                content.append(inner)
                chunk_start = pos
            else:
                pos += 1

    def _scan_embedded_expr(self, text: str, pos: int) -> tuple[Expr, int]:
        """Parse a ``{...}`` enclosed expression starting at ``pos``."""
        assert text[pos] == "{"
        nested = _Parser(text)
        nested.declared_functions = self.declared_functions
        nested.lexer.reset(pos + 1)
        expr = nested.parse_expr()
        closing = nested.peek()
        if not closing.is_symbol("}"):
            raise XQuerySyntaxError("expected '}' after embedded expression",
                                    closing.offset)
        return expr, closing.offset + 1
