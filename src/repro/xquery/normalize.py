"""XCore normalisation, centred on the let-sinking rewrite.

Section IV: *"as part of XCORE normalization, we re-order let-bindings,
moving them as deep into the query as possible. More specifically,
let-bindings are moved to just above the lowest common ancestor vertex
(defined in terms of parse-edges) of all vertices that reference its
variable."*

Sinking matters because the decomposer ships subgraphs connected by
parse edges only — variable references crossing into a shipped subgraph
become function parameters. Moving ``let $c := doc(...)`` down to its
single use converts a varref edge into a parse edge, letting the
``doc()`` call travel *with* the XPath steps applied to it (the Qc2 to
Qn2 rewrite of Table III).

Safety rules applied here (conservative refinements of the paper's
prose, which assumes a purely functional core):

* a let whose value constructs nodes is never pushed into a loop body,
  quantifier condition, order-by key or predicate — re-evaluating a
  constructor would mint fresh node identities per iteration;
* a let is never pushed below a binder that would capture a free
  variable of its value expression;
* XRPC bodies are opaque — lets never cross into them (decomposition
  decides what is shipped, not normalisation).
"""

from __future__ import annotations

from repro.xquery.ast import (
    ConstructorExpr, Expr, ForExpr, FunctionDecl, LetExpr, Module,
    OrderByExpr, PathExpr, QuantifiedExpr, walk,
)
from repro.xquery.scopes import ISOLATED, count_references, free_variables, \
    scoped_children


def normalize(module: Module) -> Module:
    """Normalise a module: sink let-bindings in every function body and
    in the query body."""
    functions = [
        FunctionDecl(decl.name, decl.params, decl.return_type,
                     sink_lets(decl.body))
        for decl in module.functions
    ]
    return Module(functions, sink_lets(module.body))


def sink_lets(expr: Expr) -> Expr:
    """Recursively move each let-binding as deep as possible."""
    expr = expr.replace_children(sink_lets)
    if isinstance(expr, LetExpr):
        return _sink_one(expr)
    return expr


def _constructs_nodes(expr: Expr) -> bool:
    return any(isinstance(node, ConstructorExpr) for node in walk(expr))


def _sink_one(let: LetExpr) -> Expr:
    """Push one let-binding downwards step by step until blocked."""
    var, value, body = let.var, let.value, let.body

    while True:
        refs = count_references(body, var)
        if refs == 0:
            # Dead binding: XQuery is side-effect free, drop it.
            return body

        target_index = _sole_referencing_child(body, var)
        if target_index is None:
            return LetExpr(var, value, body)

        children = list(scoped_children(body))
        child, bound = children[target_index]
        if bound is ISOLATED:
            return LetExpr(var, value, body)
        if set(bound) & free_variables(value):  # type: ignore[arg-type]
            return LetExpr(var, value, body)  # would capture
        if var in bound:  # references inside are shadowed; unreachable
            return LetExpr(var, value, body)  # pragma: no cover
        if _is_iterated_child(body, target_index):
            # Never sink into a per-iteration position: it would
            # re-evaluate the binding each iteration (and mint fresh
            # node identities if the value constructs nodes). The
            # paper's Qn2 likewise keeps "let $t" above the for-loop.
            return LetExpr(var, value, body)
        if isinstance(body, PathExpr):
            # Stay just above the path, as Table III's Qn2 does: the
            # doc() call is already parse-connected to its steps.
            return LetExpr(var, value, body)

        new_child = _sink_one(LetExpr(var, value, child))
        body = _replace_child_at(body, target_index, new_child)
        return body


def _sole_referencing_child(body: Expr, var: str) -> int | None:
    """Index (in ``scoped_children`` order) of the single child holding
    all references to ``var``, or None when references are spread."""
    holder: int | None = None
    for index, (child, bound) in enumerate(scoped_children(body)):
        if bound is ISOLATED:
            continue
        if bound is not ISOLATED and var in bound:  # type: ignore[operator]
            continue
        if count_references(child, var) > 0:
            if holder is not None:
                return None
            holder = index
    return holder


def _is_iterated_child(body: Expr, child_index: int) -> bool:
    """True when the child at ``child_index`` is evaluated once per
    iteration (loop bodies, quantifier conditions, order-by keys,
    path predicates)."""
    if isinstance(body, ForExpr):
        return child_index == 1
    if isinstance(body, QuantifiedExpr):
        return child_index == 1
    if isinstance(body, OrderByExpr):
        return child_index >= 1
    if isinstance(body, PathExpr):
        return child_index >= 1  # index 0 is the input, rest predicates
    return False


def _replace_child_at(body: Expr, target_index: int, new_child: Expr) -> Expr:
    """Rebuild ``body`` with the child at scoped-children position
    ``target_index`` replaced."""
    counter = {"i": -1}

    def mapper(child: Expr) -> Expr:
        counter["i"] += 1
        if counter["i"] == target_index:
            return new_child
        return child

    # replace_children iterates fields in the same order as
    # scoped_children's default path, but the binder-aware node types
    # enumerate children in a custom order; verify the orders agree.
    rebuilt = body.replace_children(mapper)
    assert counter["i"] >= target_index, "child index out of range"
    return rebuilt
