"""Render ASTs back to XQuery text.

Used by tests (Table III/IV assertions compare rendered decompositions),
by examples (showing the rewritten query), and for debugging. Output is
valid input for :func:`repro.xquery.parser.parse_query` — the
round-trip property is covered by a hypothesis test.
"""

from __future__ import annotations

from repro.xquery.ast import (
    ArithmeticExpr, ComparisonExpr, ConstructorExpr, ContextItemExpr,
    EmptySequence, Expr, ForExpr, FunCall, IfExpr, LetExpr, Literal,
    LogicalExpr, Module, NodeSetExpr, OrderByExpr, PathExpr, QuantifiedExpr,
    RangeExpr, SequenceExpr, TypeswitchExpr, UnaryExpr, VarRef, XRPCExpr,
)


def pretty(node: Expr | Module, indent: int = 0) -> str:
    """Render an expression or module as (re-parseable) query text."""
    if isinstance(node, Module):
        return pretty_module(node)
    return _render(node)


def pretty_module(module: Module) -> str:
    parts = []
    for decl in module.functions:
        params = ", ".join(f"${p.name} as {p.seq_type}" for p in decl.params)
        parts.append(
            f"declare function {decl.name}({params}) as {decl.return_type}\n"
            f"{{ {_render(decl.body)} }};")
    parts.append(_render(module.body))
    return "\n".join(parts)


def _string_literal(value: str) -> str:
    return '"' + value.replace('"', '""') + '"'


def _render(expr: Expr) -> str:
    if isinstance(expr, Literal):
        if isinstance(expr.value, bool):
            return "fn:true()" if expr.value else "fn:false()"
        if isinstance(expr.value, str):
            return _string_literal(expr.value)
        return str(expr.value)
    if isinstance(expr, EmptySequence):
        return "()"
    if isinstance(expr, VarRef):
        return f"${expr.name}"
    if isinstance(expr, ContextItemExpr):
        return "."
    if isinstance(expr, SequenceExpr):
        return "(" + ", ".join(_render(item) for item in expr.items) + ")"
    if isinstance(expr, ForExpr):
        at_clause = f" at ${expr.pos_var}" if expr.pos_var else ""
        return (f"for ${expr.var}{at_clause} in {_render_operand(expr.seq)} "
                f"return {_render_operand(expr.body)}")
    if isinstance(expr, LetExpr):
        return (f"let ${expr.var} := {_render_operand(expr.value)} "
                f"return {_render_operand(expr.body)}")
    if isinstance(expr, IfExpr):
        return (f"if ({_render(expr.cond)}) then "
                f"{_render_operand(expr.then_branch)} else "
                f"{_render_operand(expr.else_branch)}")
    if isinstance(expr, TypeswitchExpr):
        parts = [f"typeswitch ({_render(expr.operand)})"]
        for case in expr.cases:
            var = f"${case.var} as " if case.var else ""
            parts.append(f" case {var}{case.seq_type} return "
                         f"{_render_operand(case.body)}")
        default_var = f"${expr.default_var} " if expr.default_var else ""
        parts.append(f" default {default_var}return "
                     f"{_render_operand(expr.default_body)}")
        return "".join(parts)
    if isinstance(expr, ComparisonExpr):
        return (f"{_render_operand(expr.left)} {expr.op} "
                f"{_render_operand(expr.right)}")
    if isinstance(expr, ArithmeticExpr):
        return (f"{_render_operand(expr.left)} {expr.op} "
                f"{_render_operand(expr.right)}")
    if isinstance(expr, UnaryExpr):
        return f"{expr.op}{_render_operand(expr.operand)}"
    if isinstance(expr, LogicalExpr):
        return (f"{_render_operand(expr.left)} {expr.op} "
                f"{_render_operand(expr.right)}")
    if isinstance(expr, RangeExpr):
        return (f"{_render_operand(expr.start)} to "
                f"{_render_operand(expr.end)}")
    if isinstance(expr, QuantifiedExpr):
        return (f"{expr.quantifier} ${expr.var} in "
                f"{_render_operand(expr.seq)} satisfies "
                f"{_render_operand(expr.cond)}")
    if isinstance(expr, OrderByExpr):
        specs = ", ".join(
            _render(spec.key) + ("" if spec.ascending else " descending")
            for spec in expr.specs)
        return (f"for ${expr.var} in {_render_operand(expr.seq)} "
                f"order by {specs} return {_render_operand(expr.body)}")
    if isinstance(expr, NodeSetExpr):
        return (f"{_render_operand(expr.left)} {expr.op} "
                f"{_render_operand(expr.right)}")
    if isinstance(expr, PathExpr):
        rendered = _render_operand(expr.input)
        for step in expr.steps:
            predicates = "".join(f"[{_render(p)}]" for p in step.predicates)
            rendered += f"/{step.axis}::{step.test}{predicates}"
        return rendered
    if isinstance(expr, ConstructorExpr):
        if expr.name is not None:
            head = f"{expr.kind} {expr.name}"
        elif expr.name_expr is not None:
            head = f"{expr.kind} {{{_render(expr.name_expr)}}}"
        else:
            head = expr.kind
        content = "" if expr.content is None else _render(expr.content)
        return f"{head} {{{content}}}"
    if isinstance(expr, FunCall):
        args = ", ".join(_render(arg) for arg in expr.args)
        return f"{expr.name}({args})"
    if isinstance(expr, XRPCExpr):
        params = ", ".join(f"${p.name} := {_render(p.value)}"
                           for p in expr.params)
        return (f"execute at {{{_render(expr.dest)}}} "
                f"function ({params}) {{ {_render(expr.body)} }}")
    raise TypeError(f"cannot render {type(expr).__name__}")


_ATOMIC = (Literal, EmptySequence, VarRef, ContextItemExpr, FunCall,
           SequenceExpr, PathExpr, ConstructorExpr)


def _render_operand(expr: Expr) -> str:
    """Parenthesise non-atomic operands to keep precedence explicit."""
    text = _render(expr)
    if isinstance(expr, _ATOMIC):
        return text
    return f"({text})"
