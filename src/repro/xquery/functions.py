"""The built-in function library.

Builtins receive the evaluator (for context access and to keep all
counting in one place), the dynamic context, and the already-evaluated
argument sequences. The classification of Section II's Problem 5 is
annotated per function:

* Class 1 (static context): ``static-base-uri``, ``default-collation``,
  ``current-dateTime`` — safe remotely because XRPC ships the static
  context in the message envelope.
* Class 2 (dynamic node context): ``base-uri``, ``document-uri`` and
  their ``xrpc:`` wrappers — safe because fragment documents record the
  originating base URI.
* Classes 3-4 (non-descendant access): ``root``, ``id``, ``idref`` —
  the functions Conditions iv guards, supported remotely only under
  pass-by-projection.
"""

from __future__ import annotations

import math
from typing import Any, Callable

from repro.errors import XQueryDynamicError, XQueryTypeError
from repro.xmldb.compare import sort_document_order
from repro.xmldb.node import Node, NodeKind
from repro.xquery import xdm
from repro.xquery.xdm import (
    atomize, effective_boolean_value, string_value, to_number,
)

BuiltinImpl = Callable[..., list]

#: (name, arity) -> implementation. Populated by :func:`_register`.
BUILTINS: dict[tuple[str, int], BuiltinImpl] = {}

#: The built-ins of Problem 5 Classes 3-4 (paper Condition iv).
NON_DESCENDANT_FUNCTIONS = frozenset({"root", "id", "idref"})


def _register(name: str, *arities: int):
    def decorator(fn: BuiltinImpl) -> BuiltinImpl:
        for arity in arities:
            BUILTINS[(name, arity)] = fn
        return fn
    return decorator


def is_builtin(name: str, arity: int) -> bool:
    return (name, arity) in BUILTINS


def _single_node(seq: list, who: str) -> Node:
    if len(seq) != 1 or not isinstance(seq[0], Node):
        raise XQueryTypeError(f"{who} requires exactly one node")
    return seq[0]


def _optional_atom(seq: list, who: str) -> Any:
    if not seq:
        return None
    if len(seq) > 1:
        raise XQueryTypeError(f"{who} requires at most one item")
    return xdm.atomize_item(seq[0])


# ---------------------------------------------------------------------------
# Documents and node context (Problem 5 Classes 1-4)
# ---------------------------------------------------------------------------


@_register("doc", 1)
def fn_doc(evaluator, env, uri_seq):
    atom = _optional_atom(uri_seq, "fn:doc")
    if atom is None:
        return []
    env.counter.docs_opened += 1
    return [env.resolve_doc(str(atom)).root]


@_register("collection", 1)
def fn_collection(evaluator, env, uri_seq):
    # Treated as doc(*) by the decomposition analysis; at runtime we
    # resolve it like a document.
    return fn_doc(evaluator, env, uri_seq)


@_register("root", 1)
def fn_root(evaluator, env, node_seq):
    if not node_seq:
        return []
    return [_single_node(node_seq, "fn:root").root()]


@_register("id", 1, 2)
def fn_id(evaluator, env, values, node_seq=None):
    if node_seq is None:
        node = env.context_item
        if not isinstance(node, Node):
            raise XQueryDynamicError("fn:id requires a context node")
    else:
        node = _single_node(node_seq, "fn:id")
    out = []
    for value in atomize(values):
        for token in str(value).split():
            hit = node.doc.element_by_id(token)
            if hit is not None:
                out.append(hit)
    return sort_document_order(out)


@_register("idref", 1, 2)
def fn_idref(evaluator, env, values, node_seq=None):
    if node_seq is None:
        node = env.context_item
        if not isinstance(node, Node):
            raise XQueryDynamicError("fn:idref requires a context node")
    else:
        node = _single_node(node_seq, "fn:idref")
    out = []
    for value in atomize(values):
        for token in str(value).split():
            out.extend(node.doc.elements_by_idref(token))
    return sort_document_order(out)


@_register("base-uri", 1)
@_register("xrpc:base-uri", 1)
def fn_base_uri(evaluator, env, node_seq):
    if not node_seq:
        return []
    node = _single_node(node_seq, "fn:base-uri")
    uri = node.doc.uri
    return [uri] if uri else []


@_register("document-uri", 1)
@_register("xrpc:document-uri", 1)
def fn_document_uri(evaluator, env, node_seq):
    if not node_seq:
        return []
    node = _single_node(node_seq, "fn:document-uri")
    if node.kind != NodeKind.DOCUMENT:
        return []
    return [node.doc.uri] if node.doc.uri else []


@_register("static-base-uri", 0)
def fn_static_base_uri(evaluator, env):
    return [evaluator.static.base_uri]


@_register("default-collation", 0)
def fn_default_collation(evaluator, env):
    return [evaluator.static.default_collation]


@_register("current-dateTime", 0)
def fn_current_datetime(evaluator, env):
    return [evaluator.static.current_datetime]


# ---------------------------------------------------------------------------
# Sequences
# ---------------------------------------------------------------------------


@_register("count", 1)
def fn_count(evaluator, env, seq):
    return [len(seq)]


@_register("empty", 1)
def fn_empty(evaluator, env, seq):
    return [len(seq) == 0]


@_register("exists", 1)
def fn_exists(evaluator, env, seq):
    return [len(seq) > 0]


@_register("distinct-values", 1)
def fn_distinct_values(evaluator, env, seq):
    seen: list = []
    for atom in atomize(seq):
        if any(xdm.items_equal(atom, s) for s in seen):
            continue
        seen.append(atom)
    return seen


@_register("reverse", 1)
def fn_reverse(evaluator, env, seq):
    return list(reversed(seq))


@_register("subsequence", 2, 3)
def fn_subsequence(evaluator, env, seq, start_seq, length_seq=None):
    start = round(to_number(_optional_atom(start_seq, "fn:subsequence")))
    if length_seq is None:
        return seq[max(0, start - 1):]
    length = round(to_number(_optional_atom(length_seq, "fn:subsequence")))
    begin = max(1, start)
    end = start + length
    return seq[begin - 1:max(begin - 1, end - 1)]


@_register("index-of", 2)
def fn_index_of(evaluator, env, seq, target_seq):
    target = _optional_atom(target_seq, "fn:index-of")
    out = []
    for position, item in enumerate(atomize(seq), start=1):
        try:
            if xdm.value_compare("=", item, target):
                out.append(position)
        except XQueryTypeError:
            continue
    return out


@_register("insert-before", 3)
def fn_insert_before(evaluator, env, seq, pos_seq, inserts):
    position = round(to_number(_optional_atom(pos_seq, "fn:insert-before")))
    position = max(1, min(position, len(seq) + 1))
    return seq[:position - 1] + list(inserts) + seq[position - 1:]


@_register("remove", 2)
def fn_remove(evaluator, env, seq, pos_seq):
    position = round(to_number(_optional_atom(pos_seq, "fn:remove")))
    if 1 <= position <= len(seq):
        return seq[:position - 1] + seq[position:]
    return list(seq)


@_register("exactly-one", 1)
def fn_exactly_one(evaluator, env, seq):
    if len(seq) != 1:
        raise XQueryDynamicError("fn:exactly-one: sequence length "
                                 f"{len(seq)}")
    return list(seq)


@_register("zero-or-one", 1)
def fn_zero_or_one(evaluator, env, seq):
    if len(seq) > 1:
        raise XQueryDynamicError("fn:zero-or-one: sequence length "
                                 f"{len(seq)}")
    return list(seq)


@_register("one-or-more", 1)
def fn_one_or_more(evaluator, env, seq):
    if not seq:
        raise XQueryDynamicError("fn:one-or-more: empty sequence")
    return list(seq)


@_register("unordered", 1)
def fn_unordered(evaluator, env, seq):
    return list(seq)


# ---------------------------------------------------------------------------
# Booleans
# ---------------------------------------------------------------------------


@_register("not", 1)
def fn_not(evaluator, env, seq):
    return [not effective_boolean_value(seq)]


@_register("boolean", 1)
def fn_boolean(evaluator, env, seq):
    return [effective_boolean_value(seq)]


@_register("true", 0)
def fn_true(evaluator, env):
    return [True]


@_register("false", 0)
def fn_false(evaluator, env):
    return [False]


@_register("deep-equal", 2)
def fn_deep_equal(evaluator, env, left, right):
    return [xdm.sequences_deep_equal(left, right)]


# ---------------------------------------------------------------------------
# Strings
# ---------------------------------------------------------------------------


@_register("string", 0, 1)
def fn_string(evaluator, env, seq=None):
    if seq is None:
        item = env.context_item
        if item is None:
            raise XQueryDynamicError("fn:string: no context item")
        return [string_value(item)]
    if not seq:
        return [""]
    if len(seq) > 1:
        raise XQueryTypeError("fn:string requires at most one item")
    return [string_value(seq[0])]


@_register("data", 1)
def fn_data(evaluator, env, seq):
    return atomize(seq)


@_register("number", 0, 1)
def fn_number(evaluator, env, seq=None):
    if seq is None:
        item = env.context_item
        if item is None:
            raise XQueryDynamicError("fn:number: no context item")
        return [to_number(xdm.atomize_item(item))]
    atom = _optional_atom(seq, "fn:number")
    if atom is None:
        return [float("nan")]
    return [to_number(atom)]


@_register("concat", 2, 3, 4, 5, 6, 7, 8)
def fn_concat(evaluator, env, *arg_seqs):
    parts = []
    for seq in arg_seqs:
        atom = _optional_atom(seq, "fn:concat")
        parts.append("" if atom is None else string_value(atom))
    return ["".join(parts)]


@_register("string-join", 2)
def fn_string_join(evaluator, env, seq, sep_seq):
    separator = _optional_atom(sep_seq, "fn:string-join")
    separator = "" if separator is None else str(separator)
    return [separator.join(string_value(item) for item in atomize(seq))]


@_register("string-length", 0, 1)
def fn_string_length(evaluator, env, seq=None):
    text = fn_string(evaluator, env, seq)[0]
    return [len(text)]


@_register("contains", 2)
def fn_contains(evaluator, env, haystack, needle):
    h = _optional_atom(haystack, "fn:contains")
    n = _optional_atom(needle, "fn:contains")
    return [str(n or "") in str(h or "")]


@_register("starts-with", 2)
def fn_starts_with(evaluator, env, haystack, needle):
    h = _optional_atom(haystack, "fn:starts-with")
    n = _optional_atom(needle, "fn:starts-with")
    return [str(h or "").startswith(str(n or ""))]


@_register("ends-with", 2)
def fn_ends_with(evaluator, env, haystack, needle):
    h = _optional_atom(haystack, "fn:ends-with")
    n = _optional_atom(needle, "fn:ends-with")
    return [str(h or "").endswith(str(n or ""))]


@_register("substring", 2, 3)
def fn_substring(evaluator, env, source, start_seq, length_seq=None):
    text = str(_optional_atom(source, "fn:substring") or "")
    start = round(to_number(_optional_atom(start_seq, "fn:substring")))
    if length_seq is None:
        return [text[max(0, start - 1):]]
    length = round(to_number(_optional_atom(length_seq, "fn:substring")))
    begin = max(1, start)
    end = start + length
    return [text[begin - 1:max(begin - 1, end - 1)]]


@_register("substring-before", 2)
def fn_substring_before(evaluator, env, source, sep):
    text = str(_optional_atom(source, "fn:substring-before") or "")
    needle = str(_optional_atom(sep, "fn:substring-before") or "")
    index = text.find(needle) if needle else -1
    return [text[:index] if index >= 0 else ""]


@_register("substring-after", 2)
def fn_substring_after(evaluator, env, source, sep):
    text = str(_optional_atom(source, "fn:substring-after") or "")
    needle = str(_optional_atom(sep, "fn:substring-after") or "")
    index = text.find(needle) if needle else -1
    return [text[index + len(needle):] if index >= 0 else ""]


@_register("normalize-space", 0, 1)
def fn_normalize_space(evaluator, env, seq=None):
    text = fn_string(evaluator, env, seq)[0]
    return [" ".join(text.split())]


@_register("upper-case", 1)
def fn_upper_case(evaluator, env, seq):
    return [str(_optional_atom(seq, "fn:upper-case") or "").upper()]


@_register("lower-case", 1)
def fn_lower_case(evaluator, env, seq):
    return [str(_optional_atom(seq, "fn:lower-case") or "").lower()]


@_register("translate", 3)
def fn_translate(evaluator, env, source, map_from, map_to):
    text = str(_optional_atom(source, "fn:translate") or "")
    source_chars = str(_optional_atom(map_from, "fn:translate") or "")
    target_chars = str(_optional_atom(map_to, "fn:translate") or "")
    table = {}
    for index, ch in enumerate(source_chars):
        table[ord(ch)] = (target_chars[index]
                          if index < len(target_chars) else None)
    return [text.translate(table)]


# ---------------------------------------------------------------------------
# Numbers and aggregates
# ---------------------------------------------------------------------------


@_register("sum", 1, 2)
def fn_sum(evaluator, env, seq, zero_seq=None):
    atoms = atomize(seq)
    if not atoms:
        if zero_seq is not None:
            return list(zero_seq)
        return [0]
    return [math.fsum(to_number(a) for a in atoms)]


@_register("avg", 1)
def fn_avg(evaluator, env, seq):
    atoms = atomize(seq)
    if not atoms:
        return []
    return [math.fsum(to_number(a) for a in atoms) / len(atoms)]


@_register("max", 1)
def fn_max(evaluator, env, seq):
    atoms = atomize(seq)
    if not atoms:
        return []
    return [max(to_number(a) for a in atoms)]


@_register("min", 1)
def fn_min(evaluator, env, seq):
    atoms = atomize(seq)
    if not atoms:
        return []
    return [min(to_number(a) for a in atoms)]


@_register("abs", 1)
def fn_abs(evaluator, env, seq):
    atom = _optional_atom(seq, "fn:abs")
    if atom is None:
        return []
    value = to_number(atom)
    result = abs(value)
    return [int(result) if isinstance(atom, int) else result]


@_register("floor", 1)
def fn_floor(evaluator, env, seq):
    atom = _optional_atom(seq, "fn:floor")
    if atom is None:
        return []
    return [math.floor(to_number(atom))]


@_register("ceiling", 1)
def fn_ceiling(evaluator, env, seq):
    atom = _optional_atom(seq, "fn:ceiling")
    if atom is None:
        return []
    return [math.ceil(to_number(atom))]


@_register("round", 1)
def fn_round(evaluator, env, seq):
    atom = _optional_atom(seq, "fn:round")
    if atom is None:
        return []
    return [math.floor(to_number(atom) + 0.5)]


# ---------------------------------------------------------------------------
# Node names
# ---------------------------------------------------------------------------


@_register("local-name", 0, 1)
def fn_local_name(evaluator, env, seq=None):
    node = _context_or_single(env, seq, "fn:local-name")
    if node is None:
        return [""]
    name = node.name
    if ":" in name:
        name = name.split(":", 1)[1]
    return [name]


@_register("name", 0, 1)
def fn_name(evaluator, env, seq=None):
    node = _context_or_single(env, seq, "fn:name")
    if node is None:
        return [""]
    return [node.name]


def _context_or_single(env, seq, who: str) -> Node | None:
    if seq is None:
        item = env.context_item
        if not isinstance(item, Node):
            raise XQueryDynamicError(f"{who} requires a context node")
        return item
    if not seq:
        return None
    return _single_node(seq, who)


# ---------------------------------------------------------------------------
# Positional context
# ---------------------------------------------------------------------------


@_register("position", 0)
def fn_position(evaluator, env):
    if not env.context_position:
        raise XQueryDynamicError("fn:position: no context")
    return [env.context_position]


@_register("last", 0)
def fn_last(evaluator, env):
    if not env.context_size:
        raise XQueryDynamicError("fn:last: no context")
    return [env.context_size]


@_register("error", 0, 1)
def fn_error(evaluator, env, seq=None):
    message = "fn:error"
    if seq:
        message = string_value(seq[0])
    raise XQueryDynamicError(message)
