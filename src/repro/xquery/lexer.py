"""Tokenizer for the XQuery subset.

XQuery has no reserved words — keywords are contextual — so the lexer
emits generic ``NAME`` tokens and the parser decides. Direct element
constructors switch the *parser* into raw-scanning mode; to support
that, the lexer exposes its input text and can be repositioned with
:meth:`Lexer.reset`.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum, auto

from repro.errors import XQuerySyntaxError


class TokenType(Enum):
    NAME = auto()      # QName (possibly prefixed, possibly dotted axes)
    VARIABLE = auto()  # $name
    STRING = auto()    # quoted literal (value already unescaped)
    INTEGER = auto()
    DOUBLE = auto()
    SYMBOL = auto()    # punctuation / operators
    END = auto()


@dataclass(frozen=True)
class Token:
    type: TokenType
    text: str
    value: object
    offset: int

    def is_symbol(self, *symbols: str) -> bool:
        return self.type == TokenType.SYMBOL and self.text in symbols

    def is_name(self, *names: str) -> bool:
        return self.type == TokenType.NAME and self.text in names


# Longest-match-first multi-character symbols.
_SYMBOLS = [
    "<<", ">>", "!=", "<=", ">=", ":=", "//", "::", "..",
    "(", ")", "{", "}", "[", "]", ",", ";", "/", "@", "*", "=",
    "<", ">", "+", "-", "$", "|", ".", "?",
]

_NAME_EXTRA = set("-._:")


def _is_name_start(ch: str) -> bool:
    return ch.isalpha() or ch == "_"


def _is_name_char(ch: str) -> bool:
    return ch.isalnum() or ch in _NAME_EXTRA


class Lexer:
    """Produces one token at a time; supports arbitrary lookahead via
    :meth:`peek` and repositioning via :meth:`reset`."""

    def __init__(self, text: str):
        self.text = text
        self.pos = 0
        self._buffer: list[Token] = []

    # -- public API --------------------------------------------------------

    def peek(self, ahead: int = 0) -> Token:
        while len(self._buffer) <= ahead:
            self._buffer.append(self._scan())
        return self._buffer[ahead]

    def next(self) -> Token:
        token = self.peek()
        self._buffer.pop(0)
        return token

    def reset(self, offset: int) -> None:
        """Reposition raw scanning at ``offset`` (constructor support)."""
        self.pos = offset
        self._buffer.clear()

    def error(self, message: str, offset: int | None = None) -> XQuerySyntaxError:
        at = self.pos if offset is None else offset
        context = self.text[max(0, at - 20):at + 20].replace("\n", " ")
        return XQuerySyntaxError(f"{message} at offset {at}: ...{context}...", at)

    # -- scanning ------------------------------------------------------------

    def _skip_trivia(self) -> None:
        text = self.text
        while self.pos < len(text):
            ch = text[self.pos]
            if ch in " \t\r\n":
                self.pos += 1
            elif text.startswith("(:", self.pos):
                depth = 1
                self.pos += 2
                while self.pos < len(text) and depth:
                    if text.startswith("(:", self.pos):
                        depth += 1
                        self.pos += 2
                    elif text.startswith(":)", self.pos):
                        depth -= 1
                        self.pos += 2
                    else:
                        self.pos += 1
                if depth:
                    raise self.error("unterminated comment")
            else:
                return

    def _scan(self) -> Token:
        self._skip_trivia()
        text = self.text
        if self.pos >= len(text):
            return Token(TokenType.END, "", None, self.pos)
        start = self.pos
        ch = text[start]

        if ch in "\"'":
            return self._scan_string(ch)

        if ch.isdigit() or (ch == "." and start + 1 < len(text)
                            and text[start + 1].isdigit()):
            return self._scan_number()

        if ch == "$":
            self.pos += 1
            name_start = self.pos
            if self.pos >= len(text) or not _is_name_start(text[self.pos]):
                raise self.error("expected variable name after '$'")
            while self.pos < len(text) and _is_name_char(text[self.pos]):
                self.pos += 1
            name = text[name_start:self.pos]
            return Token(TokenType.VARIABLE, name, name, start)

        if _is_name_start(ch):
            while self.pos < len(text):
                current = text[self.pos]
                if current == ":":
                    # "::" is the axis separator, never part of a name;
                    # a single ":" is a QName prefix separator only when
                    # followed by a name character.
                    nxt = text[self.pos + 1] if self.pos + 1 < len(text) else ""
                    if nxt == ":" or not _is_name_start(nxt):
                        break
                    self.pos += 1
                elif _is_name_char(current):
                    self.pos += 1
                else:
                    break
            name = text[start:self.pos]
            # A trailing '.' belongs to following syntax, not the name.
            while name.endswith("."):
                name = name[:-1]
                self.pos -= 1
            return Token(TokenType.NAME, name, name, start)

        for symbol in _SYMBOLS:
            if text.startswith(symbol, start):
                self.pos = start + len(symbol)
                return Token(TokenType.SYMBOL, symbol, symbol, start)

        raise self.error(f"unexpected character {ch!r}")

    def _scan_string(self, quote: str) -> Token:
        text = self.text
        start = self.pos
        self.pos += 1
        parts: list[str] = []
        while True:
            if self.pos >= len(text):
                raise self.error("unterminated string literal", start)
            ch = text[self.pos]
            if ch == quote:
                if text.startswith(quote * 2, self.pos):
                    parts.append(quote)  # doubled quote escape
                    self.pos += 2
                    continue
                self.pos += 1
                break
            parts.append(ch)
            self.pos += 1
        value = "".join(parts)
        return Token(TokenType.STRING, value, value, start)

    def _scan_number(self) -> Token:
        text = self.text
        start = self.pos
        seen_dot = False
        seen_exp = False
        while self.pos < len(text):
            ch = text[self.pos]
            if ch.isdigit():
                self.pos += 1
            elif ch == "." and not seen_dot and not seen_exp:
                # Don't swallow ".." or ". " following an integer.
                nxt = text[self.pos + 1] if self.pos + 1 < len(text) else ""
                if not nxt.isdigit():
                    break
                seen_dot = True
                self.pos += 1
            elif ch in "eE" and not seen_exp:
                nxt = text[self.pos + 1] if self.pos + 1 < len(text) else ""
                if nxt.isdigit() or (nxt in "+-"):
                    seen_exp = True
                    self.pos += 2 if nxt in "+-" else 1
                else:
                    break
            else:
                break
        raw = text[start:self.pos]
        if seen_dot or seen_exp:
            return Token(TokenType.DOUBLE, raw, float(raw), start)
        return Token(TokenType.INTEGER, raw, int(raw), start)
