"""Tree-walking evaluator with faithful XDM semantics.

The evaluator is deliberately strict about the three properties whose
preservation under distribution is the paper's subject:

* **node identity** — ``is`` compares identity, constructors and
  message shredding create fresh identity;
* **document order** — every path step result is sorted into document
  order with duplicates removed (the behaviour Problem 4 shows is lost
  when results of different remote calls are intermixed);
* **structural relationships** — axes run over the pre/size/level
  store, so reverse/horizontal steps genuinely fail to find parents
  that a message did not ship (Problem 1), rather than accidentally
  working.

Cost accounting: each expression evaluation and each axis candidate
visited bumps the :class:`~repro.xquery.context.CostCounter`; the
network simulator turns those ticks into the "local exec"/"remote
exec" components of the paper's Figure 8 breakdown.

Path execution is *set-at-a-time* by default: steps run over sorted
pre arrays grouped by document, answered by the per-document
:class:`~repro.xmldb.index.StructuralIndex` (tag/kind/path-summary
range scans), and the post-step document-order sort is skipped because
range scans provably yield document order. ``Node`` objects are built
only at pipeline exits — predicates, constructors, results. Reverse
and horizontal axes fall back to the naive per-node walk.

Predicates are *compiled* once per query (see
:mod:`repro.xquery.predicates`): recognised comparison shapes become
value-index probes intersected with the step's candidate pre array,
residual general predicates become per-node Python closures, and a
FLWOR body shaped ``if ($dep = $invariant) then .. else ..`` runs as a
hash join (the invariant side evaluated once, hashed, probed per
iteration). Positional predicates keep the per-context path. Pass
``use_index=False`` (or flip :func:`set_default_use_index`) to force
the naive tree-walking pipeline everywhere — the equivalence tests and
the hot-path/predicate benchmarks compare the two engines. The two
engines return identical items; only the cost-counter tick totals
differ (compiled filters don't re-dispatch the AST they replaced).
"""

from __future__ import annotations

import itertools

from repro.errors import (
    UndefinedFunctionError, XQueryDynamicError, XQueryTypeError,
)
from repro.xmldb import axes as axes_mod
from repro.xmldb.compare import (
    is_same_node, node_after, node_before, sort_document_order,
)
from repro.xmldb.document import Document, DocumentBuilder
from repro.xmldb.index import (
    INDEXED_AXES, structural_index, supported_test,
)
from repro.xmldb.node import Node, NodeKind
from repro.xquery import functions as fn_mod
from repro.xquery import xdm
from repro.xquery.ast import (
    VALUE_COMPARISONS, ArithmeticExpr, ComparisonExpr, ConstructorExpr,
    ContextItemExpr, EmptySequence, Expr, ForExpr, FunCall, FunctionDecl,
    IfExpr, LetExpr, Literal, LogicalExpr, Module, NodeSetExpr,
    OrderByExpr, PathExpr, QuantifiedExpr, RangeExpr, SequenceExpr, Step,
    TypeswitchExpr, UnaryExpr, VarRef, XRPCExpr,
)
from repro.xmldb.values import value_index
from repro.xquery.context import DynamicContext, StaticContext
from repro.xquery.predicates import (
    FLIPPED_OPS, EqualityMatcher, chain_candidates, compile_predicate,
    dependent_chain, free_variables, probe_atoms,
)
from repro.xquery.types import matches_sequence_type
from repro.xquery.xdm import (
    atomize, effective_boolean_value, general_compare, to_number,
)

_fragment_counter = itertools.count(1)

#: Process-wide default for the indexed path pipeline. Flipped (via
#: :func:`set_default_use_index`) only by equivalence tests and the
#: hot-path benchmark to obtain the naive engine end-to-end.
_default_use_index = True


def set_default_use_index(enabled: bool) -> bool:
    """Set the process default for indexed path execution; returns the
    previous value so callers can restore it in a ``finally``."""
    global _default_use_index
    previous = _default_use_index
    _default_use_index = enabled
    return previous


class Evaluator:
    """Evaluates expressions of one module against a dynamic context."""

    def __init__(self, module: Module | None = None,
                 static: StaticContext | None = None,
                 use_index: bool | None = None):
        self.module = module if module is not None else Module([], EmptySequence())
        self.static = static if static is not None else StaticContext()
        self.use_index = (_default_use_index if use_index is None
                          else use_index)
        self._functions: dict[tuple[str, int], FunctionDecl] = {
            (decl.name, len(decl.params)): decl
            for decl in self.module.functions
        }
        # Per-query compiled artifacts, keyed by AST object identity
        # (the module's AST is stable for the evaluator's lifetime):
        # predicate plans per Step, hash-join shapes per ForExpr.
        self._predicate_plans: dict[int, list | None] = {}
        self._join_shapes: dict[int, tuple | None] = {}

    # -- public API ---------------------------------------------------------

    def evaluate(self, expr: Expr, env: DynamicContext) -> list:
        env.counter.ticks += 1
        method = getattr(self, f"_eval_{type(expr).__name__}", None)
        if method is None:
            raise XQueryDynamicError(
                f"no evaluation rule for {type(expr).__name__}")
        return method(expr, env)

    def run(self, env: DynamicContext) -> list:
        """Evaluate the module body."""
        return self.evaluate(self.module.body, env)

    def call_function(self, name: str, arity: int, args: list[list],
                      env: DynamicContext) -> list:
        """Apply a declared or built-in function to evaluated arguments."""
        decl = self._functions.get((name, arity))
        if decl is not None:
            body_env = env.fresh_scope().bind_many({
                param.name: value
                for param, value in zip(decl.params, args)
            })
            return self.evaluate(decl.body, body_env)
        builtin = fn_mod.BUILTINS.get((name, arity))
        if builtin is not None:
            return builtin(self, env, *args)
        raise UndefinedFunctionError(name, arity)

    # -- leaves -----------------------------------------------------------------

    def _eval_Literal(self, expr: Literal, env: DynamicContext) -> list:
        return [expr.value]

    def _eval_EmptySequence(self, expr: EmptySequence,
                            env: DynamicContext) -> list:
        return []

    def _eval_VarRef(self, expr: VarRef, env: DynamicContext) -> list:
        return env.lookup(expr.name)

    def _eval_ContextItemExpr(self, expr: ContextItemExpr,
                              env: DynamicContext) -> list:
        if env.context_item is None:
            raise XQueryDynamicError("context item is undefined")
        return [env.context_item]

    # -- structure --------------------------------------------------------------

    def _eval_SequenceExpr(self, expr: SequenceExpr,
                           env: DynamicContext) -> list:
        out: list = []
        for item_expr in expr.items:
            out.extend(self.evaluate(item_expr, env))
        return out

    def _eval_ForExpr(self, expr: ForExpr, env: DynamicContext) -> list:
        seq = self.evaluate(expr.seq, env)
        if isinstance(expr.body, XRPCExpr) and expr.pos_var is None \
                and getattr(env, "xrpc_execute_bulk", None) is not None:
            bulk = self._try_bulk_rpc(expr, seq, env)
            if bulk is not None:
                return bulk
        if self.use_index and len(seq) > 1:
            joined = self._try_hash_join(expr, seq, env)
            if joined is not None:
                return joined
        out: list = []
        for position, item in enumerate(seq, start=1):
            body_env = env.bind(expr.var, [item])
            if expr.pos_var is not None:
                body_env = body_env.bind(expr.pos_var, [position])
            out.extend(self.evaluate(expr.body, body_env))
        return out

    # -- hash-join fast path -------------------------------------------------

    def _join_shape(self, expr: ForExpr) -> tuple | None:
        """Analysis of a loop body shaped ``if ($dep-side op
        $invariant-side) then ... else ...``: one comparison operand
        varies with the loop variable and the other does not, so the
        invariant side can be evaluated once and turned into a hash
        set (``=``) or, when the dependent side is a named step chain
        off the loop variable, one value-index probe whose inverse
        image answers the filter for *all* iterations at once —
        replacing the nested-loop value joins of the Figure 7-9
        workloads. Cached per ForExpr; returns
        ``(left_dependent, cond, then, else, chain)``.
        """
        key = id(expr)
        cached = self._join_shapes.get(key, False)
        if cached is not False:
            return cached
        shape = None
        body = expr.body
        if isinstance(body, IfExpr) and isinstance(body.cond,
                                                   ComparisonExpr) \
                and body.cond.op in VALUE_COMPARISONS:
            loop_vars = {expr.var}
            if expr.pos_var is not None:
                loop_vars.add(expr.pos_var)
            left_dep = bool(free_variables(body.cond.left) & loop_vars)
            right_dep = bool(free_variables(body.cond.right) & loop_vars)
            if left_dep != right_dep:
                dependent = body.cond.left if left_dep else body.cond.right
                chain = dependent_chain(dependent, expr.var)
                if chain is not None or body.cond.op == "=":
                    shape = (left_dep, body.cond, body.then_branch,
                             body.else_branch, chain)
        self._join_shapes[key] = shape
        return shape

    def _try_hash_join(self, expr: ForExpr, seq: list,
                       env: DynamicContext) -> list | None:
        shape = self._join_shape(expr)
        if shape is None:
            return None
        left_dep, cond, then_branch, else_branch, chain = shape
        op = cond.op if left_dep else FLIPPED_OPS[cond.op]
        invariant_expr = cond.right if left_dep else cond.left
        invariant = self.evaluate(invariant_expr, env)
        invariant_atoms = atomize(invariant)

        verdicts = None
        if chain is not None and all(isinstance(item, Node)
                                     for item in seq):
            verdicts = self._chain_verdicts(chain, op, invariant_atoms,
                                            seq, env)
        matcher = None
        if verdicts is None:
            if cond.op != "=":
                return None
            matcher = EqualityMatcher.build(invariant_atoms)
            if matcher is None:
                return None

        dependent_expr = cond.left if left_dep else cond.right
        out: list = []
        for position, item in enumerate(seq, start=1):
            body_env = env.bind(expr.var, [item])
            if expr.pos_var is not None:
                body_env = body_env.bind(expr.pos_var, [position])
            if verdicts is not None:
                verdict = verdicts[position - 1]
            else:
                dependent = self.evaluate(dependent_expr, body_env)
                assert matcher is not None
                verdict = matcher.match_atoms(atomize(dependent))
                if verdict is None:
                    # Type mix the hash sets can't answer with exact
                    # raise-or-match parity: run the exact nested scan
                    # for this iteration, operands in original order.
                    left, right = ((dependent, invariant) if left_dep
                                   else (invariant, dependent))
                    verdict = general_compare(cond.op, left, right)
            branch = then_branch if verdict else else_branch
            out.extend(self.evaluate(branch, body_env))
        return out

    def _chain_verdicts(self, chain, op: str, invariant_atoms: list,
                        seq: list, env: DynamicContext) -> list | None:
        """Per-item filter verdicts computed set-at-a-time: probe the
        value index once per document with the invariant atoms, map
        the matches up the dependent chain, and answer each iteration
        with a set-membership test. None when an atom type forces the
        per-iteration path."""
        steps, probe_key = chain
        candidate_sets: dict[int, set[int]] = {}
        for item in seq:
            doc_key = id(item.doc)
            if doc_key in candidate_sets:
                continue
            matched = probe_atoms(value_index(item.doc), probe_key, op,
                                  invariant_atoms)
            if matched is None:
                return None
            env.counter.nodes_visited += len(matched)
            candidate_sets[doc_key] = chain_candidates(item.doc, steps,
                                                       matched)
        return [item.pre in candidate_sets[id(item.doc)] for item in seq]

    def _try_bulk_rpc(self, expr: ForExpr, seq: list,
                      env: DynamicContext) -> list | None:
        """Bulk RPC: a remote call nested directly in a for-loop is
        shipped as one message carrying all iterations' parameters
        instead of one synchronous interaction per iteration."""
        xrpc = expr.body
        assert isinstance(xrpc, XRPCExpr)
        destinations: list[str] = []
        calls: list[list[tuple[str, list]]] = []
        for item in seq:
            body_env = env.bind(expr.var, [item])
            dest_seq = self.evaluate(xrpc.dest, body_env)
            if len(dest_seq) != 1:
                return None
            destinations.append(xdm.string_value(dest_seq[0]))
            calls.append([(param.name, self.evaluate(param.value, body_env))
                          for param in xrpc.params])
        if not destinations:
            return []
        if len(set(destinations)) != 1:
            return None  # mixed destinations: fall back to per-call RPC
        results = env.xrpc_execute_bulk(destinations[0], calls, xrpc.body)
        out: list = []
        for result in results:
            out.extend(result)
        return out

    def _eval_LetExpr(self, expr: LetExpr, env: DynamicContext) -> list:
        value = self.evaluate(expr.value, env)
        return self.evaluate(expr.body, env.bind(expr.var, value))

    def _eval_IfExpr(self, expr: IfExpr, env: DynamicContext) -> list:
        if effective_boolean_value(self.evaluate(expr.cond, env)):
            return self.evaluate(expr.then_branch, env)
        return self.evaluate(expr.else_branch, env)

    def _eval_TypeswitchExpr(self, expr: TypeswitchExpr,
                             env: DynamicContext) -> list:
        operand = self.evaluate(expr.operand, env)
        for case in expr.cases:
            if matches_sequence_type(operand, case.seq_type):
                case_env = env.bind(case.var, operand) if case.var else env
                return self.evaluate(case.body, case_env)
        default_env = (env.bind(expr.default_var, operand)
                       if expr.default_var else env)
        return self.evaluate(expr.default_body, default_env)

    def _eval_QuantifiedExpr(self, expr: QuantifiedExpr,
                             env: DynamicContext) -> list:
        seq = self.evaluate(expr.seq, env)
        results = (
            effective_boolean_value(
                self.evaluate(expr.cond, env.bind(expr.var, [item])))
            for item in seq
        )
        if expr.quantifier == "some":
            return [any(results)]
        return [all(results)]

    def _eval_OrderByExpr(self, expr: OrderByExpr,
                          env: DynamicContext) -> list:
        seq = self.evaluate(expr.seq, env)
        decorated = []
        for index, item in enumerate(seq):
            item_env = env.bind(expr.var, [item])
            keys = []
            for spec in expr.specs:
                key_seq = atomize(self.evaluate(spec.key, item_env))
                if len(key_seq) > 1:
                    raise XQueryTypeError("order by key must be a singleton")
                keys.append((key_seq[0] if key_seq else None, spec.ascending))
            decorated.append((keys, index, item))
        decorated.sort(key=lambda entry: _OrderKey(entry[0], entry[1]))
        out: list = []
        for _keys, _index, item in decorated:
            out.extend(self.evaluate(expr.body, env.bind(expr.var, [item])))
        return out

    # -- operators -------------------------------------------------------------

    def _eval_ComparisonExpr(self, expr: ComparisonExpr,
                             env: DynamicContext) -> list:
        left = self.evaluate(expr.left, env)
        right = self.evaluate(expr.right, env)
        if expr.is_node_comparison:
            if not left or not right:
                return []
            if len(left) != 1 or len(right) != 1 or \
                    not isinstance(left[0], Node) or \
                    not isinstance(right[0], Node):
                raise XQueryTypeError(
                    f"operands of {expr.op!r} must be single nodes")
            if expr.op == "is":
                return [is_same_node(left[0], right[0])]
            if expr.op == "<<":
                return [node_before(left[0], right[0])]
            return [node_after(left[0], right[0])]
        return [general_compare(expr.op, left, right)]

    def _eval_LogicalExpr(self, expr: LogicalExpr,
                          env: DynamicContext) -> list:
        left = effective_boolean_value(self.evaluate(expr.left, env))
        if expr.op == "and":
            if not left:
                return [False]
            return [effective_boolean_value(self.evaluate(expr.right, env))]
        if left:
            return [True]
        return [effective_boolean_value(self.evaluate(expr.right, env))]

    def _eval_ArithmeticExpr(self, expr: ArithmeticExpr,
                             env: DynamicContext) -> list:
        left = atomize(self.evaluate(expr.left, env))
        right = atomize(self.evaluate(expr.right, env))
        if not left or not right:
            return []
        if len(left) > 1 or len(right) > 1:
            raise XQueryTypeError("arithmetic on multi-item sequence")
        a, b = left[0], right[0]
        both_int = (isinstance(a, int) and not isinstance(a, bool)
                    and isinstance(b, int) and not isinstance(b, bool))
        x, y = to_number(a), to_number(b)
        op = expr.op
        if op == "+":
            result = x + y
        elif op == "-":
            result = x - y
        elif op == "*":
            result = x * y
        elif op == "div":
            if y == 0:
                raise XQueryDynamicError("division by zero")
            return [x / y]
        elif op == "idiv":
            if y == 0:
                raise XQueryDynamicError("integer division by zero")
            return [int(x // y) if (x < 0) == (y < 0) or x % y == 0
                    else -int(abs(x) // abs(y))]
        elif op == "mod":
            if y == 0:
                raise XQueryDynamicError("modulo by zero")
            result = math_fmod(x, y)
        else:  # pragma: no cover - parser restricts ops
            raise XQueryDynamicError(f"unknown operator {op!r}")
        if both_int and result == int(result):
            return [int(result)]
        return [result]

    def _eval_UnaryExpr(self, expr: UnaryExpr, env: DynamicContext) -> list:
        operand = atomize(self.evaluate(expr.operand, env))
        if not operand:
            return []
        if len(operand) > 1:
            raise XQueryTypeError("unary operator on multi-item sequence")
        value = to_number(operand[0])
        result = -value if expr.op == "-" else value
        if isinstance(operand[0], int) and not isinstance(operand[0], bool):
            return [int(result)]
        return [result]

    def _eval_RangeExpr(self, expr: RangeExpr, env: DynamicContext) -> list:
        start = atomize(self.evaluate(expr.start, env))
        end = atomize(self.evaluate(expr.end, env))
        if not start or not end:
            return []
        lo = int(to_number(start[0]))
        hi = int(to_number(end[0]))
        return list(range(lo, hi + 1))

    def _eval_NodeSetExpr(self, expr: NodeSetExpr,
                          env: DynamicContext) -> list:
        left = xdm.require_nodes(self.evaluate(expr.left, env), expr.op)
        right = xdm.require_nodes(self.evaluate(expr.right, env), expr.op)
        right_keys = {(id(n.doc), n.pre) for n in right}
        if expr.op == "union":
            return sort_document_order(left + right)
        if expr.op == "intersect":
            return sort_document_order(
                [n for n in left if (id(n.doc), n.pre) in right_keys])
        return sort_document_order(
            [n for n in left if (id(n.doc), n.pre) not in right_keys])

    # -- paths ---------------------------------------------------------------------

    def _eval_PathExpr(self, expr: PathExpr, env: DynamicContext) -> list:
        context = self.evaluate(expr.input, env)
        if not self.use_index:
            for step in expr.steps:
                context = self._apply_step(step, context, env)
            return context
        steps = _collapse_steps(expr.steps)
        start = 0
        groups: list[tuple[Document, list[int]]] | None = None
        # Whole-chain prefix from tree roots: answered by the path
        # summary as one merge of per-path pre lists (the //a//b case).
        if context and all(isinstance(item, Node) and item.pre == 0
                           for item in context):
            chain_len = _chain_prefix_len(steps)
            if chain_len:
                chain = [(s.axis, s.test) for s in steps[:chain_len]]
                groups = []
                seen: set[int] = set()
                docs: list[Document] = []
                for item in context:
                    if id(item.doc) not in seen:
                        seen.add(id(item.doc))
                        docs.append(item.doc)
                docs.sort(key=lambda d: d.doc_seq)
                for doc in docs:
                    pres = structural_index(doc).match_chain(chain)
                    env.counter.nodes_visited += len(pres)
                    if pres:
                        groups.append((doc, pres))
                start = chain_len
        if groups is None:
            groups = _group_context(context, steps[start])
        for step in steps[start:]:
            groups = self._apply_step_groups(step, groups, env)
        return [Node(doc, pre) for doc, pres in groups for pre in pres]

    def _apply_step_groups(self, step: Step,
                           groups: list[tuple[Document, list[int]]],
                           env: DynamicContext
                           ) -> list[tuple[Document, list[int]]]:
        """One set-at-a-time step over per-document sorted pre arrays.

        Scannable axes run on the structural index; their results come
        out range-sorted, so no post-step document-order sort happens.
        Everything else routes through the naive per-node walk and is
        regrouped from its sorted output.
        """
        if step.axis not in INDEXED_AXES or not supported_test(step.test):
            nodes = [Node(doc, pre) for doc, pres in groups for pre in pres]
            return _regroup_sorted(self._apply_step(step, nodes, env))
        plans = self._step_predicate_plans(step) if step.predicates else None
        out: list[tuple[Document, list[int]]] = []
        for doc, pres in groups:
            index = structural_index(doc)
            if not step.predicates:
                result = index.axis_scan(step.axis, step.test, pres)
                env.counter.nodes_visited += len(result)
                if result:
                    out.append((doc, result))
                continue
            if plans is not None:
                filtered = self._filter_compiled(step, plans, doc, index,
                                                 pres, env)
                if filtered is not None:
                    if filtered:
                        out.append((doc, filtered))
                    continue
            # Positional (or otherwise uncompilable) predicates carry
            # per-context semantics, so candidates are produced one
            # context node at a time; the kept pres are merged and
            # re-sorted per document.
            kept: set[int] = set()
            single = [0]
            for context_pre in pres:
                single[0] = context_pre
                candidate_pres = index.axis_scan(step.axis, step.test,
                                                 single)
                env.counter.nodes_visited += len(candidate_pres)
                candidates = [Node(doc, pre) for pre in candidate_pres]
                for predicate in step.predicates:
                    candidates = self._filter_predicate(predicate,
                                                        candidates, env)
                kept.update(node.pre for node in candidates)
            if kept:
                out.append((doc, sorted(kept)))
        return out

    def _step_predicate_plans(self, step: Step) -> list | None:
        """Compiled plans for every predicate of ``step`` (cached per
        Step object), or None when any predicate must stay on the naive
        per-context path. All-or-nothing: a later positional predicate
        filters the candidate list an earlier predicate produced *per
        context*, so mixing compiled whole-group filtering with naive
        per-context filtering would change positional semantics."""
        key = id(step)
        cached = self._predicate_plans.get(key, False)
        if cached is not False:
            return cached
        plans: list | None = []
        for predicate in step.predicates:
            plan = compile_predicate(predicate)
            if plan is None:
                plans = None
                break
            plans.append(plan)
        self._predicate_plans[key] = plans
        return plans

    def _filter_compiled(self, step: Step, plans: list, doc: Document,
                         index, pres: list[int],
                         env: DynamicContext) -> list[int] | None:
        """Whole-group candidate scan plus compiled predicate filters.

        Compiled plans are position-free, so filtering the union of all
        context nodes' candidates equals the per-context definition.
        Returns None when a plan bails at runtime (probe value types
        the index can't answer) — the caller reruns this group through
        the naive per-context path.
        """
        candidates = index.axis_scan(step.axis, step.test, pres)
        env.counter.nodes_visited += len(candidates)
        kept: list[int] | None = candidates
        for plan in plans:
            if not kept:
                break
            kept = plan.filter(doc, index, kept, step.axis, step.test,
                               env)
            if kept is None:
                return None
        return kept

    def _apply_step(self, step: Step, context: list,
                    env: DynamicContext) -> list:
        """Naive tree-walking step: one axis walk per context node,
        then the mandatory document-order sort. Kept as the fallback
        for non-scannable axes and as the ``use_index=False`` engine
        the equivalence tests and benchmarks compare against."""
        xdm.require_nodes(context, f"axis step {step.axis}::{step.test}")
        gathered: list[Node] = []
        for node in context:
            candidates = []
            for candidate in axes_mod.axis_step(node, step.axis, step.test):
                env.counter.nodes_visited += 1
                candidates.append(candidate)
            for predicate in step.predicates:
                candidates = self._filter_predicate(predicate, candidates, env)
            gathered.extend(candidates)
        return sort_document_order(gathered)

    def _filter_predicate(self, predicate: Expr, candidates: list,
                          env: DynamicContext) -> list:
        size = len(candidates)
        kept = []
        for position, item in enumerate(candidates, start=1):
            pred_env = env.with_context(item, position, size)
            value = self.evaluate(predicate, pred_env)
            if len(value) == 1 and isinstance(value[0], (int, float)) \
                    and not isinstance(value[0], bool):
                if value[0] == position:
                    kept.append(item)
            elif effective_boolean_value(value):
                kept.append(item)
        return kept

    # -- constructors -----------------------------------------------------------------

    def _eval_ConstructorExpr(self, expr: ConstructorExpr,
                              env: DynamicContext) -> list:
        content = ([] if expr.content is None
                   else self.evaluate(expr.content, env))
        name = expr.name
        if name is None and expr.name_expr is not None:
            name_seq = self.evaluate(expr.name_expr, env)
            name = xdm.string_value(name_seq[0]) if name_seq else ""

        if expr.kind == "text":
            text = " ".join(xdm.string_value(i) for i in atomize(content))
            return [_make_leaf_fragment(NodeKind.TEXT, "", text)]
        if expr.kind == "attribute":
            value = " ".join(xdm.string_value(i) for i in atomize(content))
            return [_make_leaf_fragment(NodeKind.ATTRIBUTE, name or "attr",
                                        value)]
        if expr.kind == "document":
            builder = DocumentBuilder(_fragment_uri())
            builder.start_document()
            _build_content(builder, content)
            builder.end_document()
            return [builder.finish().root]
        # element
        builder = DocumentBuilder(_fragment_uri())
        builder.start_element(name or "element")
        _build_content(builder, content)
        builder.end_element()
        return [builder.finish().root]

    # -- functions and XRPC ----------------------------------------------------------------

    def _eval_FunCall(self, expr: FunCall, env: DynamicContext) -> list:
        args = [self.evaluate(arg, env) for arg in expr.args]
        return self.call_function(expr.name, len(args), args, env)

    def _eval_XRPCExpr(self, expr: XRPCExpr, env: DynamicContext) -> list:
        dest_seq = self.evaluate(expr.dest, env)
        if len(dest_seq) != 1:
            raise XQueryDynamicError("execute at destination must be a "
                                     "single URI")
        dest = xdm.string_value(dest_seq[0])
        params = [(param.name, self.evaluate(param.value, env))
                  for param in expr.params]
        return env.xrpc_execute(dest, params, expr.body)


def evaluate_module(module: Module, env: DynamicContext,
                    static: StaticContext | None = None) -> list:
    """Convenience one-shot: evaluate a parsed module's body."""
    return Evaluator(module, static).run(env)


# ---------------------------------------------------------------------------
# Helpers
# ---------------------------------------------------------------------------


def _collapse_steps(steps: list[Step]) -> list[Step]:
    """Rewrite ``descendant-or-self::node()/child::T`` pairs into
    ``descendant::T`` (the desugared ``//T``). Sound whenever the child
    step carries no predicates — a positional predicate is relative to
    one context node's child list, which the collapse would change."""
    out: list[Step] = []
    index = 0
    while index < len(steps):
        step = steps[index]
        if (step.axis == "descendant-or-self" and step.test == "node()"
                and not step.predicates and index + 1 < len(steps)):
            following = steps[index + 1]
            if following.axis == "child" and not following.predicates:
                out.append(Step("descendant", following.test))
                index += 2
                continue
        out.append(step)
        index += 1
    return out


def _chain_prefix_len(steps: list[Step]) -> int:
    """Length of the leading run of predicate-free element-name
    child/descendant steps — the part the path summary answers whole."""
    length = 0
    for step in steps:
        if step.predicates or step.axis not in ("child", "descendant"):
            break
        if step.test != "*" and step.test.endswith("()"):
            break
        length += 1
    return length


def _group_context(context: list, step: Step
                   ) -> list[tuple[Document, list[int]]]:
    """Nodes → per-document sorted duplicate-free pre arrays, documents
    in document-order (doc_seq) position."""
    xdm.require_nodes(context, f"axis step {step.axis}::{step.test}")
    by_doc: dict[int, tuple[Document, set[int]]] = {}
    for node in context:
        entry = by_doc.get(id(node.doc))
        if entry is None:
            by_doc[id(node.doc)] = (node.doc, {node.pre})
        else:
            entry[1].add(node.pre)
    groups = [(doc, sorted(pres)) for doc, pres in by_doc.values()]
    groups.sort(key=lambda group: group[0].doc_seq)
    return groups


def _regroup_sorted(nodes: list[Node]) -> list[tuple[Document, list[int]]]:
    """Document-order sorted nodes → contiguous per-document groups."""
    groups: list[tuple[Document, list[int]]] = []
    for node in nodes:
        if groups and groups[-1][0] is node.doc:
            groups[-1][1].append(node.pre)
        else:
            groups.append((node.doc, [node.pre]))
    return groups


def math_fmod(x: float, y: float) -> float:
    """XQuery mod keeps the sign of the dividend (like math.fmod)."""
    import math

    return math.fmod(x, y)


class _OrderKey:
    """Comparison wrapper implementing order-by semantics: per-key
    ascending/descending with empty-least, stable by input position."""

    __slots__ = ("keys", "index")

    def __init__(self, keys: list, index: int):
        self.keys = keys
        self.index = index

    def __lt__(self, other: "_OrderKey") -> bool:
        for (a, ascending), (b, _b_asc) in zip(self.keys, other.keys):
            if _order_equal(a, b):
                continue
            before = _order_less(a, b)
            return before if ascending else not before
        return self.index < other.index


def _order_equal(a, b) -> bool:
    if a is None or b is None:
        return a is None and b is None
    try:
        return xdm.value_compare("=", a, b)
    except Exception:
        return xdm.string_value(a) == xdm.string_value(b)


def _order_less(a, b) -> bool:
    if a is None:
        return True  # empty-least
    if b is None:
        return False
    try:
        return xdm.value_compare("<", a, b)
    except Exception:
        return xdm.string_value(a) < xdm.string_value(b)


def _fragment_uri() -> str:
    return f"fragment:{next(_fragment_counter)}"


def _make_leaf_fragment(kind: NodeKind, name: str, value: str) -> Node:
    doc = Document(_fragment_uri(), [kind], [name], [value], [0], [0], [-1])
    return doc.root


def _build_content(builder: DocumentBuilder, content: list) -> None:
    """Implement element-content processing: attribute items become
    attributes, nodes are deep-copied, adjacent atomics join into one
    text node separated by spaces."""
    pending_atoms: list[str] = []

    def flush_atoms() -> None:
        if pending_atoms:
            builder.text(" ".join(pending_atoms))
            pending_atoms.clear()

    for item in content:
        if isinstance(item, Node):
            if item.kind == NodeKind.ATTRIBUTE:
                builder.attribute(item.name, item.value)
                continue
            flush_atoms()
            if item.kind == NodeKind.DOCUMENT:
                for child in axes_mod.child(item):
                    builder.copy_subtree(child)
            else:
                builder.copy_subtree(item)
        else:
            pending_atoms.append(xdm.string_value(item))
    flush_atoms()
