"""Predicate compilation: recognising comparison shapes once per query.

The naive evaluator re-walks the predicate AST for every candidate
node — ``//person[child::age < 40]`` costs one full recursive
evaluation per person. This module lowers recognised predicate shapes
*once* (the compiled plan is cached per ``Step`` by the evaluator) into
one of two forms:

* an :class:`IndexPlan` — a conjunction of value-index probes
  (``child::T op literal``, ``@a op literal``, ``. op literal``,
  bare existence tests, and ``$var`` right-hand sides resolved at
  filter time), applied **set-at-a-time**: one
  :class:`~repro.xmldb.values.ValueIndex` range scan per probe,
  intersected with the step's candidate pre array through the parent
  pointers / subtree intervals — no per-candidate work at all;
* a :class:`ClosurePlan` — residual general predicates (multi-step
  relative paths, ``or``, ``not()``/``exists()``/``empty()``) compiled
  into one Python closure per predicate evaluated per candidate over
  the raw document arrays — no AST re-dispatch, no per-node dynamic
  context construction.

Positional predicates (numeric values, ``position()``/``last()``) and
anything else unrecognised compile to ``None`` and keep the naive
per-context path, which also remains the ``use_index=False``
equivalence baseline.

Compiled comparisons cannot raise type errors the naive walker would
not: node-derived operands are untyped atomics, which pair with every
atom type general comparison accepts (see ``xdm._comparable_pair``),
and probe values of unsupported types (booleans) make the plan bail to
the naive path at filter time instead of guessing.

The recognisers at the bottom (:func:`conjunction_members`,
:func:`literal_probe`, :func:`EqualityMatcher`) are shared with the
cost-based planner (measured predicate selectivities) and the cluster
router (shard-skip probing).
"""

from __future__ import annotations

from dataclasses import dataclass
from math import isnan
from typing import TYPE_CHECKING, Callable, Sequence

from repro.xmldb import kernels
from repro.xmldb.values import coerce_number, node_string, value_index
from repro.xquery.ast import (
    ComparisonExpr, ContextItemExpr, Expr, ForExpr, FunCall, LetExpr,
    Literal, LogicalExpr, OrderByExpr, PathExpr, QuantifiedExpr,
    TypeswitchExpr, VALUE_COMPARISONS, VarRef, XRPCExpr,
)
from repro.xquery.xdm import UntypedAtomic, atomize, general_compare

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.xmldb.document import Document
    from repro.xmldb.index import StructuralIndex
    from repro.xquery.context import DynamicContext

#: Mirror of each comparison operator with its operands swapped
#: (``40 > age``  ≡  ``age < 40``).
FLIPPED_OPS = {"=": "=", "!=": "!=", "<": ">", "<=": ">=",
               ">": "<", ">=": "<="}

#: Selector axes an IndexPlan can intersect set-at-a-time.
_PROBE_AXES = frozenset({"self", "child", "attribute", "descendant"})

#: Selector axes a ClosurePlan getter can walk per node.
_CLOSURE_AXES = frozenset({"self", "child", "attribute", "descendant",
                           "descendant-or-self"})

_NOT_NAMES = frozenset({"not", "fn:not"})
_EXISTS_NAMES = frozenset({"exists", "fn:exists"})
_EMPTY_NAMES = frozenset({"empty", "fn:empty"})


def _is_name_test(test: str) -> bool:
    return test != "*" and not test.endswith("()")


# ---------------------------------------------------------------------------
# Probes (index plans)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Probe:
    """One indexable conjunct: ``axis::name op rhs`` from the anchor.

    ``axis == "self"`` probes the anchor node itself (``name`` empty;
    the step's own test supplies the column). ``op == "exists"`` is a
    bare existence test with no right-hand side. The right-hand side is
    either ``literal`` or the variable ``var``, resolved at filter
    time.
    """

    axis: str
    name: str
    op: str
    literal: object = None
    var: str | None = None

    def key(self, step_axis: str, step_test: str) -> str | None:
        """The value-index column this probe reads, given the step the
        predicate hangs off; None when the step shape can't supply one
        (``self`` probes need a concrete name test)."""
        if self.axis == "attribute":
            return "@" + self.name
        if self.axis != "self":
            return self.name
        if not _is_name_test(step_test):
            return None
        return "@" + step_test if step_axis == "attribute" else step_test


class IndexPlan:
    """A conjunction of :class:`Probe` filters, applied set-at-a-time."""

    __slots__ = ("probes",)

    def __init__(self, probes: tuple[Probe, ...]):
        self.probes = probes

    def filter(self, doc: "Document", sindex: "StructuralIndex",
               pres: list[int], step_axis: str, step_test: str,
               env: "DynamicContext") -> list[int] | None:
        """Candidate pres surviving every probe; None to signal the
        caller to fall back to the naive per-context path (unsupported
        runtime value types, un-keyable self probes)."""
        vindex = value_index(doc)
        kept = pres
        for probe in self.probes:
            if not kept:
                return kept
            matched = self._matched_pres(probe, doc, sindex, vindex,
                                         step_axis, step_test, env)
            if matched is None:
                return None
            kept = _intersect(probe.axis, doc, kept, matched)
        return kept

    def _matched_pres(self, probe: Probe, doc: "Document",
                      sindex: "StructuralIndex", vindex,
                      step_axis: str, step_test: str,
                      env: "DynamicContext") -> list[int] | None:
        if probe.op == "exists":
            if probe.axis == "attribute":
                return vindex.attribute_pres(probe.name)
            return sindex.tag_pres.get(probe.name, [])
        key = probe.key(step_axis, step_test)
        if key is None:
            return None
        if probe.var is None:
            return vindex.probe(key, probe.op, probe.literal)
        atoms = atomize(env.lookup(probe.var))
        if not atoms:
            return []
        union: set[int] | None = None
        single: list[int] | None = None
        for atom in atoms:
            value: object = str(atom) if isinstance(atom, UntypedAtomic) \
                else atom
            matched = vindex.probe(key, probe.op, value)
            if matched is None:
                return None
            if single is None and union is None:
                single = matched
            else:
                if union is None:
                    union = set(single or ())
                    single = None
                union.update(matched)
        if union is not None:
            return sorted(union)
        return single if single is not None else []


def _intersect(axis: str, doc: "Document", candidates: Sequence[int],
               matched: Sequence[int]) -> Sequence[int]:
    """Candidates related to a matched node through ``axis``.

    Both inputs are sorted duplicate-free pre columns, so the self
    case is one sorted-set intersection kernel and the others are
    column-at-a-time sweeps."""
    if not matched:
        return kernels.pre_array()
    if axis == "self":
        return kernels.intersect_sorted(candidates, matched)
    if axis in ("child", "attribute"):
        owners = set(kernels.gather(doc.parents, matched))
        return kernels.pre_array(pre for pre in candidates
                                 if pre in owners)
    # descendant: any matched pre inside the candidate's subtree.
    sizes = doc.sizes
    return kernels.pre_array(
        pre for pre in candidates
        if kernels.any_in_interval(matched, pre, pre + sizes[pre]))


# ---------------------------------------------------------------------------
# Closure plans (residual general predicates)
# ---------------------------------------------------------------------------


class _ClosureCtx:
    """Per-filter-call state shared by a closure's evaluations: the
    document arrays and the predicate's variable bindings, atomized
    once for the whole candidate set instead of per node."""

    __slots__ = ("doc", "sindex", "bindings")

    def __init__(self, doc: "Document", sindex: "StructuralIndex",
                 bindings: dict[str, list]):
        self.doc = doc
        self.sindex = sindex
        self.bindings = bindings


class ClosurePlan:
    """One compiled boolean closure, applied per candidate node."""

    __slots__ = ("fn", "var_names")

    def __init__(self, fn: Callable[[_ClosureCtx, int], bool],
                 var_names: tuple[str, ...]):
        self.fn = fn
        self.var_names = var_names

    def filter(self, doc: "Document", sindex: "StructuralIndex",
               pres: list[int], step_axis: str, step_test: str,
               env: "DynamicContext") -> list[int]:
        bindings = {name: atomize(env.lookup(name))
                    for name in self.var_names}
        ctx = _ClosureCtx(doc, sindex, bindings)
        fn = self.fn
        return [pre for pre in pres if fn(ctx, pre)]


def _atoms_of_pres(ctx: _ClosureCtx, pres: Sequence[int]) -> list:
    doc = ctx.doc
    return [UntypedAtomic(node_string(doc, pre)) for pre in pres]


def _compile_getter(expr: Expr):
    """Compile a comparison operand into ``fn(ctx, pre) -> list`` of
    atoms, plus the variable names it reads; None when unsupported."""
    if isinstance(expr, Literal):
        const = [expr.value]
        return (lambda ctx, pre: const), ()
    if isinstance(expr, VarRef):
        name = expr.name
        return (lambda ctx, pre: ctx.bindings[name]), (name,)
    if isinstance(expr, ContextItemExpr):
        return (lambda ctx, pre: _atoms_of_pres(ctx, (pre,))), ()
    steps = _relative_steps(expr, _CLOSURE_AXES)
    if steps is None:
        return None

    def walk(ctx: _ClosureCtx, pre: int) -> list:
        pres: Sequence[int] = (pre,)
        for axis, test in steps:
            pres = ctx.sindex.axis_scan(axis, test, pres)
            if not pres:
                return []
        return _atoms_of_pres(ctx, pres)

    return walk, ()


def _relative_steps(expr: Expr, axes: frozenset[str]
                    ) -> tuple[tuple[str, str], ...] | None:
    """``(axis, test)`` chain of a predicate-free relative path over
    the given axes, rooted at the context item; None otherwise."""
    from repro.xmldb.index import supported_test

    if not (isinstance(expr, PathExpr)
            and isinstance(expr.input, ContextItemExpr)):
        return None
    out: list[tuple[str, str]] = []
    for step in expr.steps:
        if step.predicates or step.axis not in axes \
                or not supported_test(step.test):
            return None
        out.append((step.axis, step.test))
    return tuple(out)


def _compile_boolean(expr: Expr):
    """Compile a predicate into ``fn(ctx, pre) -> bool`` plus its
    variable names; None when the shape is unsupported."""
    if isinstance(expr, LogicalExpr):
        left = _compile_boolean(expr.left)
        right = _compile_boolean(expr.right)
        if left is None or right is None:
            return None
        lfn, lvars = left
        rfn, rvars = right
        if expr.op == "and":
            return (lambda ctx, pre: lfn(ctx, pre) and rfn(ctx, pre)), \
                lvars + rvars
        return (lambda ctx, pre: lfn(ctx, pre) or rfn(ctx, pre)), \
            lvars + rvars
    if isinstance(expr, ComparisonExpr):
        if expr.op not in VALUE_COMPARISONS:
            return None
        left = _compile_getter(expr.left)
        right = _compile_getter(expr.right)
        if left is None or right is None:
            return None
        lfn, lvars = left
        rfn, rvars = right
        op = expr.op
        return (lambda ctx, pre: general_compare(
            op, lfn(ctx, pre), rfn(ctx, pre))), lvars + rvars
    if isinstance(expr, FunCall) and len(expr.args) == 1:
        if expr.name in _NOT_NAMES:
            inner = _compile_boolean(expr.args[0])
            if inner is None:
                return None
            ifn, ivars = inner
            return (lambda ctx, pre: not ifn(ctx, pre)), ivars
        if expr.name in _EXISTS_NAMES or expr.name in _EMPTY_NAMES:
            steps = _relative_steps(expr.args[0], _CLOSURE_AXES)
            if steps is None:
                return None
            want_empty = expr.name in _EMPTY_NAMES
            walker = _steps_walker(steps)
            return (lambda ctx, pre:
                    bool(walker(ctx, pre)) != want_empty), ()
    steps = _relative_steps(expr, _CLOSURE_AXES)
    if steps is not None:
        # Bare path predicate: effective boolean value = non-empty.
        walker = _steps_walker(steps)
        return (lambda ctx, pre: bool(walker(ctx, pre))), ()
    return None


def _steps_walker(steps: tuple[tuple[str, str], ...]):
    def walk(ctx: _ClosureCtx, pre: int) -> Sequence[int]:
        pres: Sequence[int] = (pre,)
        for axis, test in steps:
            pres = ctx.sindex.axis_scan(axis, test, pres)
            if not pres:
                return ()
        return pres
    return walk


# ---------------------------------------------------------------------------
# Predicate compilation entry point
# ---------------------------------------------------------------------------


def compile_predicate(expr: Expr) -> IndexPlan | ClosurePlan | None:
    """The compiled plan for one predicate, or None to keep the naive
    per-context evaluation (positional or unrecognised predicates).

    Plans are position-free by construction: applying them to the
    union of all context nodes' candidates is equivalent to the
    per-context definition, which is what lets the evaluator run
    predicated steps set-at-a-time.
    """
    probes = _index_probes(expr)
    if probes is not None:
        return IndexPlan(tuple(probes))
    compiled = _compile_boolean(expr)
    if compiled is not None:
        fn, var_names = compiled
        return ClosurePlan(fn, tuple(dict.fromkeys(var_names)))
    return None


def _index_probes(expr: Expr) -> list[Probe] | None:
    """The probe conjunction of an index-answerable predicate."""
    if isinstance(expr, LogicalExpr) and expr.op == "and":
        left = _index_probes(expr.left)
        right = _index_probes(expr.right)
        if left is None or right is None:
            return None
        return left + right
    if isinstance(expr, ComparisonExpr):
        probe = _comparison_probe(expr)
        return None if probe is None else [probe]
    selector = _probe_selector(expr)
    if selector is not None and selector[0] != "self":
        axis, name = selector
        return [Probe(axis=axis, name=name, op="exists")]
    return None


def _comparison_probe(expr: ComparisonExpr) -> Probe | None:
    if expr.op not in VALUE_COMPARISONS:
        return None
    selector = _probe_selector(expr.left)
    rhs, op = expr.right, expr.op
    if selector is None:
        selector = _probe_selector(expr.right)
        rhs, op = expr.left, FLIPPED_OPS[expr.op]
        if selector is None:
            return None
    axis, name = selector
    if isinstance(rhs, Literal):
        value = rhs.value
        if isinstance(value, bool) or not isinstance(value,
                                                     (str, int, float)):
            return None
        return Probe(axis=axis, name=name, op=op, literal=value)
    if isinstance(rhs, VarRef):
        return Probe(axis=axis, name=name, op=op, var=rhs.name)
    return None


def _probe_selector(expr: Expr) -> tuple[str, str] | None:
    """``(axis, name)`` of a single-step probe selector: ``.`` or a
    one-step named relative path over child/attribute/descendant."""
    if isinstance(expr, ContextItemExpr):
        return ("self", "")
    steps = _relative_steps(expr, _PROBE_AXES)
    if steps is None or len(steps) != 1:
        return None
    axis, test = steps[0]
    if axis == "self" or not _is_name_test(test):
        return None
    return (axis, test)


# ---------------------------------------------------------------------------
# Hash-join support (FLWOR value equality)
# ---------------------------------------------------------------------------


class EqualityMatcher:
    """O(1)-per-atom membership for one side of a general ``=``.

    Built once from the loop-invariant side's atomized value; each
    iteration's dependent atoms are then answered from hash sets
    instead of re-scanning the invariant sequence. ``match_atoms``
    returns None when an atom pair *could* diverge from
    ``general_compare``'s raise-or-match scan order (typed strings
    against numbers and vice versa) — the caller falls back to the
    exact nested scan for that iteration.
    """

    __slots__ = ("strings", "nums_typed", "nums_untyped", "ebvs",
                 "has_plain", "has_num", "all_untyped")

    @classmethod
    def build(cls, atoms: list) -> "EqualityMatcher | None":
        """A matcher for the invariant side, or None when its atom mix
        (booleans, exotic types) isn't worth special-casing."""
        matcher = cls()
        strings: set[str] = set()
        nums_typed: set[float] = set()
        nums_untyped: set[float] = set()
        ebvs: set[bool] = set()
        has_plain = False
        all_untyped = True
        for atom in atoms:
            if isinstance(atom, bool):
                return None
            if isinstance(atom, UntypedAtomic):
                strings.add(str(atom))
                ebvs.add(len(atom) > 0)
                number = coerce_number(atom)
                if not isnan(number):
                    nums_untyped.add(number)
            elif isinstance(atom, str):
                strings.add(atom)
                has_plain = True
                all_untyped = False
            elif isinstance(atom, (int, float)):
                number = float(atom)
                if not isnan(number):
                    nums_typed.add(number)
                all_untyped = False
            else:
                return None
        matcher.strings = strings
        matcher.nums_typed = nums_typed
        matcher.nums_untyped = nums_untyped
        matcher.ebvs = ebvs
        matcher.has_plain = has_plain
        matcher.has_num = bool(nums_typed)
        matcher.all_untyped = all_untyped
        return matcher

    def _match_atom(self, atom) -> bool | None:
        if isinstance(atom, UntypedAtomic):
            if str(atom) in self.strings:
                return True
            if self.has_num:
                number = coerce_number(atom)
                return not isnan(number) and number in self.nums_typed
            return False
        if isinstance(atom, bool):
            # boolean-vs-(string|number) raises in the naive scan.
            if not self.all_untyped:
                return None
            return atom in self.ebvs
        if isinstance(atom, str):
            if self.has_num:
                return None           # typed string vs number raises
            return atom in self.strings
        if isinstance(atom, (int, float)):
            if self.has_plain:
                return None           # number vs typed string raises
            number = float(atom)
            if isnan(number):
                return False
            return number in self.nums_typed or number in self.nums_untyped
        return None

    def match_atoms(self, atoms: list) -> bool | None:
        """Existential match over the dependent side's atoms; None when
        any atom needs the exact nested scan (type-error parity)."""
        for atom in atoms:
            verdict = self._match_atom(atom)
            if verdict is None:
                return None
            if verdict:
                return True
        return False


# ---------------------------------------------------------------------------
# Set-at-a-time FLWOR filters (probe + upward chain mapping)
# ---------------------------------------------------------------------------


_CHAIN_AXES = frozenset({"child", "attribute", "descendant"})


def dependent_chain(expr: Expr, var: str
                    ) -> tuple[tuple[tuple[str, str], ...], str] | None:
    """``(steps, probe key)`` of a loop-dependent comparison side
    ``$var/step/.../named-step``: a predicate-free chain of named
    child/attribute/descendant steps; the last step's name is the
    value-index column every reached node lives in."""
    if not (isinstance(expr, PathExpr) and isinstance(expr.input, VarRef)
            and expr.input.name == var and expr.steps):
        return None
    out: list[tuple[str, str]] = []
    for step in expr.steps:
        if step.predicates or step.axis not in _CHAIN_AXES \
                or not _is_name_test(step.test):
            return None
        out.append((step.axis, step.test))
    axis, test = out[-1]
    key = "@" + test if axis == "attribute" else test
    return tuple(out), key


def probe_atoms(vindex, key: str, op: str,
                atoms: list) -> list[int] | None:
    """Union of value-index probes for every atom (the existential
    general comparison); None when an atom's type can't be probed
    with exact semantics (booleans, exotic types)."""
    matched: set[int] = set()
    single: list[int] | None = None
    for atom in atoms:
        if isinstance(atom, bool):
            return None
        if isinstance(atom, UntypedAtomic):
            value: object = str(atom)
        elif isinstance(atom, (str, int, float)):
            value = atom
        else:
            return None
        result = vindex.probe(key, op, value)
        if result is None:
            return None
        if single is None and not matched:
            single = result
        else:
            if single is not None:
                matched.update(single)
                single = None
            matched.update(result)
    if single is not None:
        return single
    return sorted(matched)


def chain_candidates(doc: "Document",
                     steps: tuple[tuple[str, str], ...],
                     matched: Sequence[int]) -> set[int]:
    """All pres X such that following ``steps`` from X reaches some
    pre in ``matched`` — the inverse image of a probe result through
    the dependent chain (upward parent/ancestor mapping with name and
    kind checks at every intermediate step)."""
    from repro.xmldb.node import NodeKind

    current = set(matched)
    parents = doc.parents
    kinds = doc.kinds
    names = doc.names
    for index in range(len(steps) - 1, -1, -1):
        axis = steps[index][0]
        if axis == "descendant":
            anchors = set()
            for pre in current:
                cursor = parents[pre]
                while cursor >= 0:
                    anchors.add(cursor)
                    cursor = parents[cursor]
        else:  # child / attribute: one hop up
            anchors = {parents[pre] for pre in current if parents[pre] >= 0}
        if index > 0:
            prev_axis, prev_test = steps[index - 1]
            # The node this level's step started from must itself be a
            # result of the previous step: right kind, right name.
            want_kind = (NodeKind.ATTRIBUTE if prev_axis == "attribute"
                         else NodeKind.ELEMENT)
            anchors = {pre for pre in anchors
                       if kinds[pre] == want_kind
                       and names[pre] == prev_test}
        current = anchors
        if not current:
            break
    return current


# ---------------------------------------------------------------------------
# Shared recognisers (planner selectivity, cluster shard skipping)
# ---------------------------------------------------------------------------


def conjunction_members(expr: Expr) -> list[Expr]:
    """Flatten a chain of ``and`` into its conjuncts."""
    if isinstance(expr, LogicalExpr) and expr.op == "and":
        return (conjunction_members(expr.left)
                + conjunction_members(expr.right))
    return [expr]


def literal_probe(expr: Expr, var: str | None = None,
                  pure: bool = False) -> tuple[str, str, object] | None:
    """``(key, op, literal)`` of a comparison between a relative path
    and a literal — the *necessary condition* recognisers build on.

    ``var`` anchors the path at ``$var`` instead of the context item.
    Unlike :func:`_comparison_probe`, the path may have any number of
    steps (with arbitrary axes): the probe keys on the *last* step's
    name, which every result node must carry, so "no node with that
    key satisfies the comparison" soundly implies "the comparison is
    false everywhere". The key is ``@name`` when the last step walks
    the attribute axis.

    ``pure`` additionally requires every path step to be
    predicate-free, making the whole conjunct provably *raise-free*
    (node atoms are untyped and pair with any literal; predicate-free
    steps over nodes cannot fail) — the guarantee shard skipping needs
    to replace an evaluation with "nothing" without hiding an error
    the evaluation would have raised.
    """
    if not isinstance(expr, ComparisonExpr) \
            or expr.op not in VALUE_COMPARISONS:
        return None
    for path_side, other, op in ((expr.left, expr.right, expr.op),
                                 (expr.right, expr.left,
                                  FLIPPED_OPS[expr.op])):
        if not isinstance(other, Literal):
            continue
        value = other.value
        if isinstance(value, bool) or not isinstance(value,
                                                     (str, int, float)):
            continue
        key = _anchored_path_key(path_side, var, pure)
        if key is not None:
            return (key, op, value)
    return None


def _anchored_path_key(expr: Expr, var: str | None,
                       pure: bool) -> str | None:
    if not isinstance(expr, PathExpr) or not expr.steps:
        return None
    if var is None:
        if not isinstance(expr.input, ContextItemExpr):
            return None
    elif not (isinstance(expr.input, VarRef) and expr.input.name == var):
        return None
    if pure and any(step.predicates for step in expr.steps):
        return None
    last = expr.steps[-1]
    if not _is_name_test(last.test):
        return None
    return "@" + last.test if last.axis == "attribute" else last.test


# ---------------------------------------------------------------------------
# Free variables (hash-join invariance analysis)
# ---------------------------------------------------------------------------


def free_variables(expr: Expr) -> frozenset[str]:
    """The variables ``expr`` reads from its environment."""
    if isinstance(expr, VarRef):
        return frozenset((expr.name,))
    if isinstance(expr, ForExpr):
        bound = {expr.var}
        if expr.pos_var is not None:
            bound.add(expr.pos_var)
        return (free_variables(expr.seq)
                | (free_variables(expr.body) - bound))
    if isinstance(expr, LetExpr):
        return (free_variables(expr.value)
                | (free_variables(expr.body) - {expr.var}))
    if isinstance(expr, QuantifiedExpr):
        return (free_variables(expr.seq)
                | (free_variables(expr.cond) - {expr.var}))
    if isinstance(expr, OrderByExpr):
        inner = free_variables(expr.body)
        for spec in expr.specs:
            inner |= free_variables(spec.key)
        return free_variables(expr.seq) | (inner - {expr.var})
    if isinstance(expr, TypeswitchExpr):
        out = free_variables(expr.operand)
        for case in expr.cases:
            bound = {case.var} if case.var else set()
            out |= free_variables(case.body) - bound
        default_bound = {expr.default_var} if expr.default_var else set()
        out |= free_variables(expr.default_body) - default_bound
        return out
    if isinstance(expr, XRPCExpr):
        out = free_variables(expr.dest)
        param_names = set()
        for param in expr.params:
            out |= free_variables(param.value)
            param_names.add(param.name)
        return out | (free_variables(expr.body) - param_names)
    out: frozenset[str] = frozenset()
    for child in expr.child_exprs():
        out |= free_variables(child)
    return out


__all__ = [
    "ClosurePlan", "EqualityMatcher", "IndexPlan", "Probe",
    "compile_predicate", "conjunction_members", "free_variables",
    "literal_probe",
]
