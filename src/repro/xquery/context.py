"""Static and dynamic evaluation contexts.

The static context carries what the paper's Problem 5 calls "Class 1"
properties (static base URI, default collation, current dateTime) —
XRPC ships these in the message so the remote side can install
identical values; our :class:`StaticContext` is therefore serialisable
into a message and reconstructable on the peer.

The dynamic context carries variable bindings, the context item (for
predicates), the document resolver (how ``fn:doc`` finds documents —
the federation injects a resolver that performs *data shipping* for
remote URIs), and the XRPC executor (how ``execute at`` performs a
remote call — the federation injects the function-shipping transport).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Callable, Protocol

from repro.errors import UndefinedVariableError, XQueryDynamicError
from repro.xmldb.document import Document


@dataclass(frozen=True)
class StaticContext:
    """Static query properties (XQuery static context subset)."""

    base_uri: str = "http://localhost/"
    default_collation: str = "http://www.w3.org/2005/xpath-functions/collation/codepoint"
    current_datetime: str = "2009-03-29T12:00:00Z"

    def to_attributes(self) -> dict[str, str]:
        """Serialise for the XRPC message envelope (Problem 5 Class 1)."""
        return {
            "xrpc:base-uri": self.base_uri,
            "xrpc:default-collation": self.default_collation,
            "xrpc:current-dateTime": self.current_datetime,
        }

    @classmethod
    def from_attributes(cls, attrs: dict[str, str]) -> "StaticContext":
        return cls(
            base_uri=attrs.get("xrpc:base-uri", cls.base_uri),
            default_collation=attrs.get("xrpc:default-collation",
                                        cls.default_collation),
            current_datetime=attrs.get("xrpc:current-dateTime",
                                       cls.current_datetime),
        )


class CostCounter:
    """Mutable counters the evaluator increments; the benchmark cost
    model converts them into simulated execution time."""

    __slots__ = ("ticks", "nodes_visited", "docs_opened")

    def __init__(self) -> None:
        self.ticks = 0
        self.nodes_visited = 0
        self.docs_opened = 0

    def snapshot(self) -> dict[str, int]:
        return {
            "ticks": self.ticks,
            "nodes_visited": self.nodes_visited,
            "docs_opened": self.docs_opened,
        }


class DocResolver(Protocol):
    def __call__(self, uri: str) -> Document: ...


class XrpcExecutor(Protocol):
    def __call__(self, dest: str, params: list[tuple[str, list]],
                 body: Any) -> list: ...


def _no_documents(uri: str) -> Document:
    raise XQueryDynamicError(f"no document available at {uri!r}")


def _no_xrpc(dest: str, params: list[tuple[str, list]], body: Any) -> list:
    raise XQueryDynamicError(
        f"execute at {dest!r}: no XRPC transport configured")


@dataclass
class DynamicContext:
    """One evaluation environment. Immutable in style: binding
    operations return new contexts sharing the counters/resolvers."""

    variables: dict[str, list] = field(default_factory=dict)
    context_item: Any = None
    context_position: int = 0
    context_size: int = 0
    resolve_doc: Callable[[str], Document] = _no_documents
    xrpc_execute: Callable[..., list] = _no_xrpc
    #: Optional Bulk RPC entry point: (dest, [call-params...], body) ->
    #: one result sequence per call. None disables bulk batching.
    xrpc_execute_bulk: Callable[..., list] | None = None
    counter: CostCounter = field(default_factory=CostCounter)

    def bind(self, name: str, value: list) -> "DynamicContext":
        variables = dict(self.variables)
        variables[name] = value
        return replace(self, variables=variables)

    def bind_many(self, bindings: dict[str, list]) -> "DynamicContext":
        variables = dict(self.variables)
        variables.update(bindings)
        return replace(self, variables=variables)

    def lookup(self, name: str) -> list:
        try:
            return self.variables[name]
        except KeyError:
            raise UndefinedVariableError(name) from None

    def with_context(self, item: Any, position: int,
                     size: int) -> "DynamicContext":
        return replace(self, context_item=item, context_position=position,
                       context_size=size)

    def fresh_scope(self) -> "DynamicContext":
        """A context with no variable bindings (function body scope)."""
        return replace(self, variables={}, context_item=None,
                       context_position=0, context_size=0)
