"""A from-scratch XQuery engine implementing the paper's XCore subset.

The engine covers the extended XCore grammar of Table II (FLWOR, all
thirteen XPath axes, value and node comparisons, node-set operators,
order by, typeswitch, computed and direct constructors, user-defined
functions) plus the ``execute at`` XRPC expression of rules 27-28, with
faithful XDM semantics for node identity, document order and duplicate
elimination — the properties whose preservation under distribution is
the subject of the paper.

Public entry points:

* :func:`~repro.xquery.parser.parse_query` — text to
  :class:`~repro.xquery.ast.Module`.
* :func:`~repro.xquery.normalize.normalize` — XCore normalisation
  including the let-sinking rewrite of Section IV.
* :class:`~repro.xquery.evaluator.Evaluator` — dynamic evaluation.
* :func:`~repro.xquery.pretty.pretty` — AST back to query text.
"""

from repro.xquery.ast import (
    Expr,
    Module,
    FunctionDecl,
    Literal,
    EmptySequence,
    SequenceExpr,
    VarRef,
    ForExpr,
    LetExpr,
    IfExpr,
    TypeswitchExpr,
    ComparisonExpr,
    ArithmeticExpr,
    LogicalExpr,
    RangeExpr,
    QuantifiedExpr,
    OrderByExpr,
    NodeSetExpr,
    PathExpr,
    Step,
    ConstructorExpr,
    FunCall,
    XRPCExpr,
    XRPCParam,
    walk,
)
from repro.xquery.parser import parse_query, parse_expr
from repro.xquery.normalize import normalize, sink_lets
from repro.xquery.evaluator import Evaluator, evaluate_module
from repro.xquery.context import StaticContext, DynamicContext
from repro.xquery.pretty import pretty
from repro.xquery.xdm import (
    UntypedAtomic,
    atomize,
    effective_boolean_value,
    string_value,
    sequences_deep_equal,
)

__all__ = [
    "Expr", "Module", "FunctionDecl", "Literal", "EmptySequence",
    "SequenceExpr", "VarRef", "ForExpr", "LetExpr", "IfExpr",
    "TypeswitchExpr", "ComparisonExpr", "ArithmeticExpr", "LogicalExpr",
    "RangeExpr", "QuantifiedExpr", "OrderByExpr", "NodeSetExpr",
    "PathExpr", "Step", "ConstructorExpr", "FunCall", "XRPCExpr",
    "XRPCParam", "walk",
    "parse_query", "parse_expr", "normalize", "sink_lets",
    "Evaluator", "evaluate_module", "StaticContext", "DynamicContext",
    "pretty",
    "UntypedAtomic", "atomize", "effective_boolean_value",
    "string_value", "sequences_deep_equal",
]
