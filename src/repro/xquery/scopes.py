"""Variable scoping helpers shared by the normaliser and the d-graph.

XQuery binds variables in ``for``, ``let``, quantified, ``order by``
and ``typeswitch`` expressions; the XRPC body is an isolated scope that
sees only its declared parameters. :func:`scoped_children` makes those
rules explicit so reference counting, free-variable computation and
let-sinking all share one definition.
"""

from __future__ import annotations

from typing import Iterator

from repro.xquery.ast import (
    Expr, ForExpr, LetExpr, OrderByExpr, QuantifiedExpr, TypeswitchExpr,
    VarRef, XRPCExpr,
)

#: Sentinel: the child is an isolated scope (XRPC bodies) — outer
#: variables are invisible inside it.
ISOLATED = object()


def scoped_children(expr: Expr) -> Iterator[tuple[Expr, tuple[str, ...] | object]]:
    """Yield ``(child, bound_names)`` for each direct child.

    ``bound_names`` lists variables newly bound *for that child*;
    :data:`ISOLATED` marks children in a fresh scope.
    """
    if isinstance(expr, ForExpr):
        yield expr.seq, ()
        bound = (expr.var,) if expr.pos_var is None else (expr.var,
                                                          expr.pos_var)
        yield expr.body, bound
        return
    if isinstance(expr, LetExpr):
        yield expr.value, ()
        yield expr.body, (expr.var,)
        return
    if isinstance(expr, QuantifiedExpr):
        yield expr.seq, ()
        yield expr.cond, (expr.var,)
        return
    if isinstance(expr, OrderByExpr):
        yield expr.seq, ()
        for spec in expr.specs:
            yield spec.key, (expr.var,)
        yield expr.body, (expr.var,)
        return
    if isinstance(expr, TypeswitchExpr):
        yield expr.operand, ()
        for case in expr.cases:
            yield case.body, (case.var,) if case.var else ()
        yield expr.default_body, ((expr.default_var,)
                                  if expr.default_var else ())
        return
    if isinstance(expr, XRPCExpr):
        yield expr.dest, ()
        for param in expr.params:
            yield param.value, ()
        yield expr.body, ISOLATED
        return
    for child in expr.child_exprs():
        yield child, ()


def count_references(expr: Expr, var: str) -> int:
    """Occurrences of ``$var`` in ``expr``, respecting shadowing."""
    if isinstance(expr, VarRef):
        return 1 if expr.name == var else 0
    total = 0
    for child, bound in scoped_children(expr):
        if bound is ISOLATED:
            continue
        if var in bound:  # type: ignore[operator]
            continue
        total += count_references(child, var)
    return total


def free_variables(expr: Expr) -> set[str]:
    """All variables referenced but not bound within ``expr``.

    XRPC bodies contribute nothing: their parameters are their whole
    environment.
    """
    if isinstance(expr, VarRef):
        return {expr.name}
    out: set[str] = set()
    for child, bound in scoped_children(expr):
        if bound is ISOLATED:
            continue
        child_free = free_variables(child)
        out |= child_free - set(bound)  # type: ignore[arg-type]
    return out
