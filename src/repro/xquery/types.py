"""Sequence-type matching for typeswitch and function signatures.

Types are kept as their source strings (e.g. ``node()*``,
``element(person)``, ``xs:string``); this module interprets them. Only
the subset the paper's queries need is implemented — unrecognised item
types never match, so typeswitch falls through to ``default``.
"""

from __future__ import annotations

from repro.xmldb.node import Node, NodeKind
from repro.xquery.xdm import UntypedAtomic


def split_occurrence(seq_type: str) -> tuple[str, str]:
    """Split ``item-type`` and occurrence indicator (one of '', ?, *, +)."""
    seq_type = seq_type.strip()
    if seq_type.endswith(("*", "+", "?")) and not seq_type.endswith("()"):
        return seq_type[:-1].strip(), seq_type[-1]
    return seq_type, ""


def _matches_item(item: object, item_type: str) -> bool:
    if item_type in ("item()", "item"):
        return True
    if item_type == "node()":
        return isinstance(item, Node)
    if item_type == "text()":
        return isinstance(item, Node) and item.kind == NodeKind.TEXT
    if item_type == "document-node()":
        return isinstance(item, Node) and item.kind == NodeKind.DOCUMENT
    if item_type.startswith("element"):
        if not isinstance(item, Node) or item.kind != NodeKind.ELEMENT:
            return False
        inner = item_type[len("element"):].strip("()").strip()
        return inner in ("", "*") or item.name == inner
    if item_type.startswith("attribute"):
        if not isinstance(item, Node) or item.kind != NodeKind.ATTRIBUTE:
            return False
        inner = item_type[len("attribute"):].strip("()").strip()
        return inner in ("", "*") or item.name == inner
    if item_type in ("xs:string", "string"):
        return isinstance(item, str) and not isinstance(item, bool)
    if item_type in ("xs:untypedAtomic",):
        return isinstance(item, UntypedAtomic)
    if item_type in ("xs:integer", "xs:int", "xs:long", "integer"):
        return isinstance(item, int) and not isinstance(item, bool)
    if item_type in ("xs:double", "xs:decimal", "xs:float", "double",
                     "numeric"):
        return isinstance(item, (int, float)) and not isinstance(item, bool)
    if item_type in ("xs:boolean", "boolean"):
        return isinstance(item, bool)
    return False


def matches_sequence_type(seq: list, seq_type: str) -> bool:
    """True iff ``seq`` conforms to the SequenceType string."""
    item_type, occurrence = split_occurrence(seq_type)
    if item_type in ("empty-sequence()", "empty()"):
        return not seq
    if not seq:
        return occurrence in ("?", "*")
    if len(seq) > 1 and occurrence not in ("*", "+"):
        return False
    return all(_matches_item(item, item_type) for item in seq)
