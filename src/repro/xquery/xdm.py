"""XDM value semantics: items, atomization, EBV, comparisons.

An XQuery value is a Python list of *items*; an item is either a
:class:`~repro.xmldb.node.Node` or an atomic value: ``str``, ``int``,
``float``, ``bool``, or :class:`UntypedAtomic` (the type of values
atomized from schema-less nodes, which general comparisons coerce by
the *other* operand's type — the behaviour the benchmark query's
``$x/descendant::age < 40`` relies on).
"""

from __future__ import annotations

from typing import Any, Iterable

from repro.errors import XQueryTypeError
from repro.xmldb.compare import deep_equal
from repro.xmldb.node import Node, NodeKind

Item = Any  # Node | str | int | float | bool | UntypedAtomic
Sequence = list


class UntypedAtomic(str):
    """A string atomized from a node, carrying untyped semantics."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"untyped({str.__repr__(self)})"


def is_node(item: Item) -> bool:
    return isinstance(item, Node)


def string_value(item: Item) -> str:
    """fn:string of a single item."""
    if isinstance(item, Node):
        return item.string_value()
    if isinstance(item, bool):
        return "true" if item else "false"
    if isinstance(item, float):
        return format_double(item)
    return str(item)


def format_double(value: float) -> str:
    """Serialise a double roughly per the XQuery rules (no trailing .0
    for integral values)."""
    if value != value:  # NaN
        return "NaN"
    if value == float("inf"):
        return "INF"
    if value == float("-inf"):
        return "-INF"
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def atomize_item(item: Item) -> Item:
    if isinstance(item, Node):
        return UntypedAtomic(item.string_value())
    return item


def atomize(seq: Iterable[Item]) -> list[Item]:
    """fn:data on a sequence."""
    return [atomize_item(item) for item in seq]


def effective_boolean_value(seq: Sequence) -> bool:
    """The EBV rules of XQuery 1.0 (section 2.4.3)."""
    if not seq:
        return False
    first = seq[0]
    if isinstance(first, Node):
        return True
    if len(seq) > 1:
        raise XQueryTypeError(
            "effective boolean value of a multi-item atomic sequence")
    if isinstance(first, bool):
        return first
    if isinstance(first, (int, float)):
        return bool(first) and first == first  # NaN is false
    if isinstance(first, str):  # includes UntypedAtomic
        return len(first) > 0
    raise XQueryTypeError(f"no EBV for {type(first).__name__}")


def to_number(item: Item) -> float:
    """Cast an atomic item to xs:double (fn:number semantics)."""
    if isinstance(item, bool):
        return 1.0 if item else 0.0
    if isinstance(item, (int, float)):
        return float(item)
    if isinstance(item, str):
        text = item.strip()
        try:
            return float(text)
        except ValueError:
            return float("nan")
    raise XQueryTypeError(f"cannot cast {type(item).__name__} to number")


def _comparable_pair(left: Item, right: Item) -> tuple[Any, Any]:
    """Apply the general-comparison coercion rules to one atom pair.

    * untypedAtomic vs numeric -> both double
    * untypedAtomic vs string/untyped -> both string
    * untypedAtomic vs boolean -> both boolean
    * numeric vs numeric -> double
    * otherwise types must match
    """
    lu = isinstance(left, UntypedAtomic)
    ru = isinstance(right, UntypedAtomic)
    if lu and ru:
        return str(left), str(right)
    if lu:
        if isinstance(right, bool):
            return effective_boolean_value([str(left)]), right
        if isinstance(right, (int, float)):
            return to_number(left), float(right)
        return str(left), str(right)
    if ru:
        if isinstance(left, bool):
            return left, effective_boolean_value([str(right)])
        if isinstance(left, (int, float)):
            return float(left), to_number(right)
        return str(left), str(right)
    if isinstance(left, bool) or isinstance(right, bool):
        if isinstance(left, bool) and isinstance(right, bool):
            return left, right
        raise XQueryTypeError("cannot compare boolean with non-boolean")
    if isinstance(left, (int, float)) and isinstance(right, (int, float)):
        return float(left), float(right)
    if isinstance(left, str) and isinstance(right, str):
        return str(left), str(right)
    raise XQueryTypeError(
        f"cannot compare {type(left).__name__} with {type(right).__name__}")


_OPERATORS = {
    "=": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}


def value_compare(op: str, left: Item, right: Item) -> bool:
    """Compare one coerced atom pair."""
    a, b = _comparable_pair(atomize_item(left), atomize_item(right))
    return _OPERATORS[op](a, b)


def general_compare(op: str, left_seq: Sequence, right_seq: Sequence) -> bool:
    """Existentially quantified general comparison (rule CompExpr)."""
    left_atoms = atomize(left_seq)
    right_atoms = atomize(right_seq)
    for left in left_atoms:
        for right in right_atoms:
            a, b = _comparable_pair(left, right)
            if _OPERATORS[op](a, b):
                return True
    return False


def items_equal(left: Item, right: Item) -> bool:
    """fn:deep-equal on one item pair."""
    left_node = isinstance(left, Node)
    right_node = isinstance(right, Node)
    if left_node != right_node:
        return False
    if left_node:
        return deep_equal(left, right)
    try:
        a, b = _comparable_pair(left, right)
    except XQueryTypeError:
        return False
    return a == b


def sequences_deep_equal(left_seq: Sequence, right_seq: Sequence) -> bool:
    """fn:deep-equal on two sequences — the paper's Q(D) = Q'(D)
    equivalence criterion."""
    if len(left_seq) != len(right_seq):
        return False
    return all(items_equal(a, b) for a, b in zip(left_seq, right_seq))


def serialize_sequence(seq: Sequence) -> str:
    """Human/bench-facing serialisation of a result sequence."""
    from repro.xmldb.node import NodeKind
    from repro.xmldb.serializer import serialize_node

    parts = []
    for item in seq:
        if isinstance(item, Node):
            if item.kind == NodeKind.ATTRIBUTE:
                parts.append(f'{item.name}="{item.value}"')
            else:
                parts.append(serialize_node(item))
        else:
            parts.append(string_value(item))
    return " ".join(parts)


def require_nodes(seq: Sequence, operation: str) -> list[Node]:
    """Assert a sequence contains only nodes (path/set-op inputs)."""
    for item in seq:
        if not isinstance(item, Node):
            raise XQueryTypeError(
                f"{operation} requires nodes, got {type(item).__name__}")
    return seq
