"""AST node classes for the extended XCore grammar (paper Table II).

Design notes:

* Path expressions keep consecutive steps together in one
  :class:`PathExpr` (a list of :class:`Step`), exactly as the paper's
  grammar does, "rather than nesting each step in a separate for-loop".
* The XRPC extension (grammar rules 27-28) is represented by
  :class:`XRPCExpr` with a destination expression, a parameter list of
  :class:`XRPCParam` bindings, and a body. The decomposer *inserts*
  these nodes; the parser also accepts the paper's
  ``execute at {uri} {expr}`` presentation syntax so tests can write
  decomposed queries literally.
* Every node supports uniform child traversal
  (:meth:`Expr.child_exprs`) and functional reconstruction
  (:meth:`Expr.replace_children`), which the d-graph builder,
  normaliser and decomposer rely on. Nodes are mutable dataclasses but
  rewrites always build new nodes.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields, replace
from typing import Any, Callable, Iterator

# ---------------------------------------------------------------------------
# Base class
# ---------------------------------------------------------------------------


@dataclass
class Expr:
    """Base class of all expression AST nodes."""

    def child_exprs(self) -> list["Expr"]:
        """All direct sub-expressions, in syntactic order."""
        out: list[Expr] = []
        for f in fields(self):
            value = getattr(self, f.name)
            _collect_exprs(value, out)
        return out

    def replace_children(self, mapper: Callable[["Expr"], "Expr"]) -> "Expr":
        """Rebuild this node with every direct child passed through
        ``mapper``. Non-expression fields are copied untouched."""
        updates: dict[str, Any] = {}
        for f in fields(self):
            value = getattr(self, f.name)
            new_value, changed = _map_exprs(value, mapper)
            if changed:
                updates[f.name] = new_value
        if not updates:
            return self
        return replace(self, **updates)

    @property
    def rule(self) -> str:
        """The grammar-rule name this node represents (d-graph labels)."""
        return type(self).__name__


def _collect_exprs(value: Any, out: list[Expr]) -> None:
    if isinstance(value, Expr):
        out.append(value)
    elif isinstance(value, (list, tuple)):
        for item in value:
            _collect_exprs(item, out)


def _map_exprs(value: Any, mapper: Callable[[Expr], Expr]) -> tuple[Any, bool]:
    if isinstance(value, Expr):
        new = mapper(value)
        return new, new is not value
    if isinstance(value, list):
        changed = False
        items = []
        for item in value:
            new_item, item_changed = _map_exprs(item, mapper)
            items.append(new_item)
            changed = changed or item_changed
        return (items, True) if changed else (value, False)
    if isinstance(value, tuple):
        changed = False
        items = []
        for item in value:
            new_item, item_changed = _map_exprs(item, mapper)
            items.append(new_item)
            changed = changed or item_changed
        return (tuple(items), True) if changed else (value, False)
    return value, False


def walk(expr: Expr) -> Iterator[Expr]:
    """Preorder traversal of an expression tree."""
    yield expr
    for child in expr.child_exprs():
        yield from walk(child)


# ---------------------------------------------------------------------------
# Leaves
# ---------------------------------------------------------------------------


@dataclass
class Literal(Expr):
    """A string, integer, double or boolean literal."""

    value: str | int | float | bool


@dataclass
class EmptySequence(Expr):
    """The literal ``()``."""


@dataclass
class VarRef(Expr):
    """A variable reference ``$name``."""

    name: str


# ---------------------------------------------------------------------------
# Structured expressions
# ---------------------------------------------------------------------------


@dataclass
class SequenceExpr(Expr):
    """Comma sequence construction ``(e1, e2, ...)`` (rule ExprSeq)."""

    items: list[Expr]


@dataclass
class ForExpr(Expr):
    """Core ``for $var (at $pos)? in seq return body``."""

    var: str
    seq: Expr
    body: Expr
    pos_var: str | None = None


@dataclass
class LetExpr(Expr):
    """Core ``let $var := value return body``."""

    var: str
    value: Expr
    body: Expr


@dataclass
class IfExpr(Expr):
    """``if (cond) then then_branch else else_branch``."""

    cond: Expr
    then_branch: Expr
    else_branch: Expr


@dataclass
class TypeswitchCase:
    """One ``case $var as SequenceType return expr`` clause."""

    var: str | None
    seq_type: str
    body: Expr


@dataclass
class TypeswitchExpr(Expr):
    """``typeswitch (operand) case ... default $var return expr``."""

    operand: Expr
    cases: list[TypeswitchCase]
    default_var: str | None
    default_body: Expr

    def child_exprs(self) -> list[Expr]:
        out: list[Expr] = [self.operand]
        out.extend(case.body for case in self.cases)
        out.append(self.default_body)
        return out

    def replace_children(self, mapper: Callable[[Expr], Expr]) -> "Expr":
        new_operand = mapper(self.operand)
        new_cases = [TypeswitchCase(c.var, c.seq_type, mapper(c.body))
                     for c in self.cases]
        new_default = mapper(self.default_body)
        return TypeswitchExpr(new_operand, new_cases, self.default_var,
                              new_default)


#: Value-comparison operators (rule ValueComp, general comparisons).
VALUE_COMPARISONS = ("=", "!=", "<", "<=", ">", ">=")

#: Node-comparison operators (rule NodeCmp).
NODE_COMPARISONS = ("is", "<<", ">>")


@dataclass
class ComparisonExpr(Expr):
    """A general or node comparison (rules 12-14)."""

    op: str
    left: Expr
    right: Expr

    @property
    def is_node_comparison(self) -> bool:
        return self.op in NODE_COMPARISONS


@dataclass
class ArithmeticExpr(Expr):
    """Binary arithmetic: ``+ - * div idiv mod``."""

    op: str
    left: Expr
    right: Expr


@dataclass
class UnaryExpr(Expr):
    """Unary minus/plus."""

    op: str
    operand: Expr


@dataclass
class LogicalExpr(Expr):
    """``and`` / ``or``."""

    op: str
    left: Expr
    right: Expr


@dataclass
class RangeExpr(Expr):
    """``start to end`` integer range."""

    start: Expr
    end: Expr


@dataclass
class QuantifiedExpr(Expr):
    """``some/every $var in seq satisfies cond``."""

    quantifier: str  # "some" | "every"
    var: str
    seq: Expr
    cond: Expr


@dataclass
class OrderSpec:
    """One ordering key of an ``order by`` clause."""

    key: Expr
    ascending: bool = True


@dataclass
class OrderByExpr(Expr):
    """Core form of ``for $var in seq order by keys return body``.

    The key expressions see ``var`` bound to the current item (rule 15
    OrderExpr, FLWOR-desugared).
    """

    var: str
    seq: Expr
    specs: list[OrderSpec]
    body: Expr

    def child_exprs(self) -> list[Expr]:
        out: list[Expr] = [self.seq]
        out.extend(spec.key for spec in self.specs)
        out.append(self.body)
        return out

    def replace_children(self, mapper: Callable[[Expr], Expr]) -> "Expr":
        return OrderByExpr(
            self.var,
            mapper(self.seq),
            [OrderSpec(mapper(s.key), s.ascending) for s in self.specs],
            mapper(self.body),
        )


#: Node-set operators (rule 18).
NODE_SET_OPS = ("union", "intersect", "except")


@dataclass
class NodeSetExpr(Expr):
    """``union`` / ``intersect`` / ``except`` on node sequences."""

    op: str
    left: Expr
    right: Expr


@dataclass
class Step:
    """One axis step ``axis::test`` with optional predicates."""

    axis: str
    test: str
    predicates: list[Expr] = field(default_factory=list)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        preds = "".join(f"[...]" for _ in self.predicates)
        return f"{self.axis}::{self.test}{preds}"


@dataclass
class PathExpr(Expr):
    """``input/step/step...`` with consecutive steps kept together."""

    input: Expr
    steps: list[Step]

    def child_exprs(self) -> list[Expr]:
        out: list[Expr] = [self.input]
        for step in self.steps:
            out.extend(step.predicates)
        return out

    def replace_children(self, mapper: Callable[[Expr], Expr]) -> "Expr":
        return PathExpr(
            mapper(self.input),
            [Step(s.axis, s.test, [mapper(p) for p in s.predicates])
             for s in self.steps],
        )


@dataclass
class ContextItemExpr(Expr):
    """The context item ``.`` (inside predicates)."""


@dataclass
class ConstructorExpr(Expr):
    """Computed/direct constructor (rule 19).

    ``kind`` is one of ``element``, ``attribute``, ``document``,
    ``text``. ``name`` is a constant QName or None when ``name_expr``
    computes the name. ``content`` is the content expression (None for
    empty content).
    """

    kind: str
    name: str | None
    name_expr: Expr | None
    content: Expr | None


@dataclass
class FunCall(Expr):
    """A function application ``QName(args...)`` (rule 26)."""

    name: str
    args: list[Expr]


@dataclass
class XRPCParam:
    """One XRPC parameter binding ``$param := $outer`` (rule 28).

    The decomposer only ever generates variable-to-variable bindings
    (the insertion procedure of Section III-B), but after distributed
    code motion a parameter may bind an arbitrary expression, so
    ``value`` is an :class:`Expr`.
    """

    name: str
    value: Expr


@dataclass
class XRPCExpr(Expr):
    """``execute at {dest} { body }`` with parameters (rules 27-28).

    ``body`` is the remote function body; it may reference only its
    parameters and sees the remote peer's document space.
    """

    dest: Expr
    params: list[XRPCParam]
    body: Expr

    def child_exprs(self) -> list[Expr]:
        out: list[Expr] = [self.dest]
        out.extend(p.value for p in self.params)
        out.append(self.body)
        return out

    def replace_children(self, mapper: Callable[[Expr], Expr]) -> "Expr":
        return XRPCExpr(
            mapper(self.dest),
            [XRPCParam(p.name, mapper(p.value)) for p in self.params],
            mapper(self.body),
        )


# ---------------------------------------------------------------------------
# Modules and function declarations
# ---------------------------------------------------------------------------


@dataclass
class Param:
    """A declared function parameter ``$name as type``."""

    name: str
    seq_type: str = "item()*"


@dataclass
class FunctionDecl:
    """``declare function name(params) as type { body };``"""

    name: str
    params: list[Param]
    return_type: str
    body: Expr


@dataclass
class Module:
    """A main module: function declarations plus the query body."""

    functions: list[FunctionDecl]
    body: Expr

    def function(self, name: str, arity: int) -> FunctionDecl | None:
        for decl in self.functions:
            if decl.name == name and len(decl.params) == arity:
                return decl
        return None
