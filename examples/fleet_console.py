"""Continuous fleet observability: attach a ``FleetMonitor`` to a
sharded federation, run a workload while one replica degrades and
another dies, and watch the live console — rolling-window latency
quantiles, per-peer health scores, the SLO burn-rate alert, and the
recent event stream. Finishes with the sampling profiler's collapsed
stacks (paste into a flamegraph tool such as speedscope or
inferno/flamegraph.pl).

Run:  PYTHONPATH=src python examples/fleet_console.py [scale]
"""

import os
import sys

from repro.decompose import Strategy
from repro.obs import SLO, BurnRatePolicy, FleetMonitor, render_fleet
from repro.runtime import FederationEngine
from repro.workloads import SHARDED_SCAN_QUERY, build_sharded_federation

SCALE = float(os.environ.get("REPRO_EXAMPLE_SCALE", "0.01"))

#: Injected latency far above the testbed's baseline, and a slow-query
#: threshold between the two.
DEGRADE_S = 0.080
SLOW_S = 0.030


def run_batch(engine, n):
    futures = [engine.submit(SHARDED_SCAN_QUERY, at="local",
                             strategy=Strategy.BY_PROJECTION)
               for _ in range(n)]
    for future in futures:
        future.result()


def main(scale: float = SCALE) -> None:
    print(f"Sharded XMark federation at scale {scale}, "
          "fleet monitor attached ...")
    cluster = build_sharded_federation(scale)
    monitor = FleetMonitor(slow_query_s=SLOW_S,
                           profile_every=4).attach(cluster)
    monitor.add_slo(
        SLO(name="latency", target=0.9, threshold_s=SLOW_S),
        BurnRatePolicy(long_s=60.0, short_s=1.0, threshold=2.0,
                       min_requests=5))

    with FederationEngine(cluster, max_workers=2, cache=False,
                          batch_window_s=0.0) as engine:
        print("\n--- healthy warmup (8 queries) ---")
        run_batch(engine, 8)
        print(render_fleet(monitor, recent_events=4))

        print("\n--- node2 degrades: +80 ms per transmission; catalog "
              "marks steer two shards onto it (6 queries) ---")
        cluster.catalog.mark_down("node1")
        cluster.catalog.mark_down("node3")
        cluster.transport.degrade_peer("node2", DEGRADE_S)
        run_batch(engine, 6)
        print(render_fleet(monitor, recent_events=6))

        print("\n--- node2 restored; node1 killed outright, then "
              "revived (12 queries) ---")
        cluster.catalog.mark_up("node1")
        cluster.catalog.mark_up("node3")
        cluster.transport.restore_peer("node2")
        cluster.transport.kill_peer("node1")
        run_batch(engine, 8)
        cluster.transport.revive_peer("node1")
        run_batch(engine, 4)
        print(render_fleet(monitor, recent_events=6))
        print(f"\nEngine summary: {engine.metrics.format_summary()}")

    print(f"\nSampling profiler ({monitor.profiler.samples} sampled "
          "traces, sim-weighted collapsed stacks):")
    print(monitor.profiler.folded("sim") or "  (no samples)")


if __name__ == "__main__":
    main(float(sys.argv[1]) if len(sys.argv) > 1 else SCALE)
