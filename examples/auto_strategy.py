"""Automatic strategy selection: the cost-based planner in action.

Three acts:

1. ``strategy="auto"`` picks the right execution strategy per query —
   projection for the big XMark pair, whole-document shipping for a
   tiny reference table — and ``RunStats.plan`` explains the choice.
2. On a cross-document query the planner builds a *mixed* plan
   (decompose the big document's call site, ship the tiny document)
   that beats every one of the paper's four fixed strategies.
3. A deceptive workload makes the first pick wrong; the
   estimated-vs-observed feedback loop corrects it within a few runs.

Run:  python examples/auto_strategy.py
"""

import os

from repro.decompose import Strategy
from repro.system.federation import Federation
from repro.workloads import (
    BENCHMARK_QUERY, MIXED_CROSS_QUERY, TINY_LOOKUP_QUERY,
    build_mixed_federation,
)

#: The XMark scale factor (CI smoke-tests examples at a tiny scale).
SCALE = float(os.environ.get("REPRO_EXAMPLE_SCALE", "0.01"))


def show(result, title: str) -> None:
    plan = result.stats.plan
    print(f"--- {title}")
    print(f"    chose {plan.strategy}: estimated "
          f"{plan.estimated_s * 1000:.3f} ms, actual "
          f"{result.stats.times.total * 1000:.3f} ms"
          f"{' (plan cache)' if plan.from_cache else ''}")


def act_one_per_query_picks() -> None:
    print("=" * 64)
    print("Act 1: one federation, different best strategies per query")
    federation = build_mixed_federation(SCALE)
    for query, name in ((BENCHMARK_QUERY, "XMark semijoin (big docs)"),
                        (TINY_LOOKUP_QUERY, "tiny reference lookup")):
        result = federation.run(query, at="local", strategy="auto")
        show(result, name)
        print("    "
              + result.stats.plan.explain().replace("\n", "\n    "))


def act_two_mixed_plan() -> None:
    print("=" * 64)
    print("Act 2: a mixed plan no fixed strategy can express")
    federation = build_mixed_federation(SCALE)
    for strategy in Strategy:
        result = federation.run(MIXED_CROSS_QUERY, at="local",
                                strategy=strategy)
        print(f"    {strategy.value:15} "
              f"{result.stats.times.total * 1000:8.3f} ms")
    result = federation.run(MIXED_CROSS_QUERY, at="local",
                            strategy="auto")
    print(f"    {'auto':15} {result.stats.times.total * 1000:8.3f} ms "
          f"<- plan {result.stats.plan.strategy}")


def act_three_feedback() -> None:
    print("=" * 64)
    print("Act 3: a mis-pick corrected by estimated-vs-observed feedback")
    # Every entry matches the predicate, so decomposed responses carry
    # the whole document back — the static estimate (which assumes 50%
    # selectivity) is badly wrong, and data shipping is actually best.
    rows = "".join(
        f"<entry><code>C{index:03d}</code><region>r0</region>"
        f"<note>{'x' * 60}</note></entry>" for index in range(120))
    query = """
    (for $e in doc("xrpc://ref/rates.xml")/child::rates/child::entry
     return if ($e/child::region = "r0") then $e/child::note else (),
     for $e in doc("xrpc://ref/rates.xml")/child::rates/child::entry
     return if ($e/child::region = "r0") then $e/child::code else ())
    """
    federation = Federation()
    federation.add_peer("ref").store("rates.xml", f"<rates>{rows}</rates>")
    federation.add_peer("local")

    best = min(
        (federation.run(query, at="local", strategy=s).stats.times.total,
         s.value) for s in Strategy)
    print(f"    true best strategy: {best[1]} ({best[0] * 1000:.3f} ms)")

    for attempt in range(1, 13):
        result = federation.run(query, at="local", strategy="auto")
        plan = result.stats.plan
        print(f"    run {attempt:2d}: chose {plan.strategy:15} "
              f"actual {result.stats.times.total * 1000:.3f} ms")
        if plan.strategy == best[1]:
            print(f"    converged after {attempt} runs "
                  f"(calibration: "
                  f"{federation.planner.calibration.observations} "
                  f"observations)")
            break


def main() -> None:
    act_one_per_query_picks()
    act_two_mixed_plan()
    act_three_feedback()


if __name__ == "__main__":
    main()
