"""Sharded & replicated cluster: same query, N x the peers.

Shards the XMark pair over a 4-node fleet (4 shards per collection,
replication factor 2), runs the Section VII benchmark query against
the virtual hosts, shows the aggregate pushdown, then kills a data
node and watches the router fail over to the surviving replicas.

Run:  PYTHONPATH=src python examples/sharded_cluster.py [scale]
"""

import os
import sys

from repro import Strategy
from repro.workloads import (
    SHARDED_BENCHMARK_QUERY, build_sharded_federation,
)

SCALE = float(os.environ.get("REPRO_EXAMPLE_SCALE", "0.01"))


def main(scale: float = SCALE) -> None:
    print(f"Sharding XMark pair at scale {scale} over 4 nodes "
          "(4 shards, replication 2) ...")
    federation = build_sharded_federation(scale, shard_count=4,
                                          replication_factor=2)
    catalog = federation.catalog
    for spec in catalog.collections():
        placements = ", ".join(
            f"s{s.index}->{'/'.join(s.replicas)}" for s in spec.shards)
        print(f"  {spec.name}: {placements}")

    print("\nBenchmark query against the virtual hosts "
          "(doc(\"xrpc://people-c/...\")):")
    for strategy in Strategy:
        run = federation.run(SHARDED_BENCHMARK_QUERY, at="local",
                             strategy=strategy)
        stats = run.stats
        print(f"  {strategy.value:15s} {len(run.items):4d} results  "
              f"{stats.scatter_shards:2d} shard calls  "
              f"{stats.total_transferred_bytes / 1024:7.1f} KB")

    count_query = ('count(doc("xrpc://people-c/people.xml")'
                   "/child::site/child::people/child::person)")
    run = federation.run(count_query, at="local",
                         strategy=Strategy.BY_PROJECTION)
    print(f"\nAggregate pushdown: count(person) = {run.items[0]} "
          f"({run.stats.scatter_shards} per-shard counts summed, "
          f"{run.stats.message_bytes} message bytes total)")

    print("\nKilling node2 (replica of two shards) ...")
    federation.transport.kill_peer("node2")
    run = federation.run(SHARDED_BENCHMARK_QUERY, at="local",
                         strategy=Strategy.BY_PROJECTION)
    served = sorted({m.dest for m in run.messages})
    print(f"  still {len(run.items)} results, "
          f"{run.stats.failovers} failovers, served by {served}")


if __name__ == "__main__":
    main(float(sys.argv[1]) if len(sys.argv) > 1 else SCALE)
