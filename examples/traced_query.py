"""Distributed tracing end to end: run one sharded query with
``trace=True``, print the span tree, dump both trace exports, and show
the unified metrics registry plus explain-analyze.

The span tree attributes every simulated component (Figure 8's shred /
exec / serialize / network stack) to the operator that spent it; the
Chrome export loads in ``chrome://tracing`` or https://ui.perfetto.dev.

Run:  PYTHONPATH=src python examples/traced_query.py [scale]
"""

import os
import sys
import tempfile

from repro import Strategy
from repro.obs import (dump_chrome_trace, dump_trace, render_analysis,
                       render_tree, validate_chrome_trace)
from repro.workloads import (
    SHARDED_BENCHMARK_QUERY, build_sharded_federation,
)

SCALE = float(os.environ.get("REPRO_EXAMPLE_SCALE", "0.01"))


def main(scale: float = SCALE) -> None:
    print(f"Sharded XMark federation at scale {scale}; "
          "running the Section VII benchmark query with trace=True ...")
    federation = build_sharded_federation(scale)
    result = federation.run(SHARDED_BENCHMARK_QUERY, at="local",
                            strategy=Strategy.BY_PROJECTION, trace=True)
    root = result.trace

    print("\nSpan tree (wall ms per span, simulated ms per component):")
    print(render_tree(root, max_depth=3))

    totals = root.component_totals()
    print("\nLeaf components vs RunStats.times (they match exactly):")
    for component, seconds in sorted(totals.items()):
        recorded = getattr(result.stats.times, component)
        print(f"  {component:12s} leaves {seconds * 1e3:8.3f} ms | "
              f"stats {recorded * 1e3:8.3f} ms")

    out_dir = os.environ.get("REPRO_TRACE_DIR", tempfile.mkdtemp())
    trace_path = os.path.join(out_dir, "trace.json")
    chrome_path = os.path.join(out_dir, "chrome_trace.json")
    dump_trace(root, trace_path)
    chrome = dump_chrome_trace(root, chrome_path)
    problems = validate_chrome_trace(chrome)
    print(f"\nWrote {trace_path}")
    print(f"Wrote {chrome_path} "
          f"({len(chrome['traceEvents'])} events, "
          f"{'valid' if not problems else problems})"
          " — open it in chrome://tracing or https://ui.perfetto.dev")

    print("\nExplain-analyze (estimated vs actual per operator):")
    print(render_analysis(result.stats.plan.analysis))

    print("\nUnified metrics registry (federation scope):")
    print(federation.metrics.render_text())


if __name__ == "__main__":
    main(float(sys.argv[1]) if len(sys.argv) > 1 else SCALE)
