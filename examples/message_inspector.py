"""Inspect the actual XRPC messages under the three semantics.

Reproduces the paper's Figures 4 and 5 on the Table I query: the
``earlier($bc, $abc)`` call whose parameters overlap, and the
``makenodes()`` call whose result needs its parent. Prints the real
SOAP request/response texts the simulated network carried.

Run:  python examples/message_inspector.py
"""

from repro import Federation, Strategy, serialize_sequence

EARLIER_QUERY = """
declare function earlier($l as node(), $r as node()) as node()
{ if ($l << $r) then $l else $r };
let $abc := <a><b><c/></b></a>
let $bc := $abc/child::b
return execute at {"example.org"} { earlier($bc, $abc) }
"""

MAKENODES_QUERY = """
declare function makenodes() as node()
{ <a><b><c/></b></a>/child::b };
let $bc := execute at {"example.org"} { makenodes() }
return $bc/parent::a
"""


def show(title: str, federation: Federation, query: str,
         strategy: Strategy) -> None:
    result = federation.run(query, at="local", strategy=strategy,
                            keep_message_xml=True)
    print(f"\n=== {title} [{strategy.value}] ===")
    print("result:", serialize_sequence(result.items) or "(empty)")
    for log in result.messages:
        print(f"\nrequest to {log.dest} ({log.request_bytes} bytes):")
        print(" ", log.request_xml)
        print(f"response ({log.response_bytes} bytes):")
        print(" ", log.response_xml)


def main() -> None:
    federation = Federation()
    federation.add_peer("example.org")
    federation.add_peer("local")

    # Figure 4: by-value repeats the overlapping parameters; by-fragment
    # serialises the shared fragment once and references into it.
    show("Figure 4 — earlier($bc, $abc)", federation, EARLIER_QUERY,
         Strategy.BY_VALUE)
    show("Figure 4 — earlier($bc, $abc)", federation, EARLIER_QUERY,
         Strategy.BY_FRAGMENT)

    # Figure 5: the projection-paths element makes the response carry
    # parent::a, so $bc/parent::a works — by-value returns empty.
    show("Figure 5 — makenodes()", federation, MAKENODES_QUERY,
         Strategy.BY_VALUE)
    show("Figure 5 — makenodes()", federation, MAKENODES_QUERY,
         Strategy.BY_PROJECTION)


if __name__ == "__main__":
    main()
