"""The Section VII benchmark: a distributed semijoin over XMark data.

Finds authors of annotations of auctions sold by persons younger
than 40, with the people document on peer1 and the auctions document
on peer2. Compares all four execution strategies — the same comparison
the paper's Figures 7-9 plot.

Run:  python examples/federated_semijoin.py [scale]
"""

import os
import sys

from repro.decompose import Strategy
from repro.workloads import (
    BENCHMARK_QUERY, build_federation, document_bytes, run_strategy,
)

DEFAULT_SCALE = float(os.environ.get("REPRO_EXAMPLE_SCALE", "0.01"))


def main(scale: float = DEFAULT_SCALE) -> None:
    print(f"Generating XMark pair at scale {scale} ...")
    federation = build_federation(scale)
    total = document_bytes(federation)
    print(f"people.xml + auctions.xml = {total / 1024:.0f} KB\n")
    print("Benchmark query (paper Section VII):")
    print(BENCHMARK_QUERY)

    header = (f"{'strategy':15s} {'result':>7s} {'transferred':>12s} "
              f"{'messages':>9s} {'time':>9s}")
    print(header)
    print("-" * len(header))
    for strategy in Strategy:
        run = run_strategy(federation, strategy, scale)
        stats = run.stats
        print(f"{strategy.value:15s} {len(run.result.items):7d} "
              f"{stats.total_transferred_bytes / 1024:10.1f} KB "
              f"{stats.messages:9d} "
              f"{stats.times.total * 1000:7.2f} ms")

    print("\nTime breakdown (pass-by-projection):")
    run = run_strategy(federation, Strategy.BY_PROJECTION, scale)
    for component, seconds in run.stats.times.as_dict().items():
        print(f"  {component:15s} {seconds * 1000:8.3f} ms")


if __name__ == "__main__":
    main(float(sys.argv[1]) if len(sys.argv) > 1 else 0.01)
