"""Quickstart: distribute one XQuery query over two simulated peers.

Run:  python examples/quickstart.py
"""

from repro import Federation, Strategy, pretty, serialize_sequence

STUDENTS = """<people>
 <person><name>Ann</name><tutor>Bob</tutor><id>s1</id></person>
 <person><name>Bob</name><id>s2</id></person>
 <person><name>Col</name><tutor>Zed</tutor><id>s3</id></person>
</people>"""

COURSE = """<enroll>
 <exam id="s2"><grade>A</grade></exam>
 <exam id="s1"><grade>B</grade></exam>
 <exam id="s3"><grade>C</grade></exam>
</enroll>"""

# The paper's Table III query Q2: grades in course42 of students whose
# tutor is also a student. students.xml lives on peer A, course42.xml
# on peer B.
QUERY = """
(let $s := doc("xrpc://A/students.xml")/child::people/child::person,
     $c := doc("xrpc://B/course42.xml"),
     $t := $s[tutor = $s/name]
 for $e in $c/enroll/exam
 where $e/@id = $t/id
 return $e)/grade
"""


def main() -> None:
    federation = Federation()
    federation.add_peer("A").store("students.xml", STUDENTS)
    federation.add_peer("B").store("course42.xml", COURSE)
    federation.add_peer("local")

    print("Query:", QUERY)
    for strategy in Strategy:
        result = federation.run(QUERY, at="local", strategy=strategy)
        stats = result.stats
        print(f"--- {strategy.value}")
        print(f"    result: {serialize_sequence(result.items)}")
        print(f"    transferred: {stats.total_transferred_bytes} bytes "
              f"({stats.documents_shipped} documents, "
              f"{stats.messages} messages)")
        print(f"    simulated time: {stats.times.total * 1000:.2f} ms")

    # Show what the decomposer actually did under pass-by-fragment.
    result = federation.run(QUERY, at="local",
                            strategy=Strategy.BY_FRAGMENT)
    print("\nDecomposed query (pass-by-fragment, Table IV's Qf2):")
    print(pretty(result.module))


if __name__ == "__main__":
    main()
