"""Runtime vs compile-time XML projection precision (Figures 10-11).

Projects the XMark people document for the benchmark's parameter
($t/@id of persons with age < 40) two ways:

* compile-time: from the path analysis's over-estimate — every person
  with its age (predicates are invisible statically);
* runtime (this paper's technique): from the actual filtered person
  sequence at call time.

Run:  python examples/projection_precision.py
"""

from repro.paths.relpath import parse_rel_path
from repro.xmark import XMarkConfig, generate_people
from repro.xmldb.projection import project
from repro.xmldb.serializer import serialize, serialize_node
from repro.xquery.context import DynamicContext
from repro.xquery.evaluator import Evaluator
from repro.xquery.parser import parse_query


def persons(doc, query_text):
    module = parse_query(query_text)
    env = DynamicContext(resolve_doc=lambda uri: doc)
    return Evaluator(module).evaluate(module.body, env)


def project_for(doc, context_nodes):
    used = list(context_nodes)
    for path in (parse_rel_path("attribute::id"),):
        used.extend(path.evaluate(context_nodes))
    return project(used, [])


def main() -> None:
    import os

    override = os.environ.get("REPRO_EXAMPLE_SCALE")
    scales = ((float(override),) if override
              else (0.0025, 0.005, 0.01, 0.02))
    print(f"{'scale':>8s} {'document':>10s} {'compile-time':>13s} "
          f"{'runtime':>10s} {'precision':>10s}")
    for scale in scales:
        doc = generate_people(XMarkConfig(scale=scale))
        doc_size = len(serialize(doc))

        everyone = persons(doc, 'doc("u")//person')
        compile_time = project_for(doc, everyone)
        compile_size = len(serialize_node(compile_time.doc.root))

        young = persons(doc, 'doc("u")//person[age < 40]')
        runtime = project_for(doc, young)
        runtime_size = len(serialize_node(runtime.doc.root))

        print(f"{scale:8.4f} {doc_size/1024:8.1f}KB "
              f"{compile_size/1024:11.1f}KB {runtime_size/1024:8.1f}KB "
              f"{compile_size/runtime_size:9.1f}x")

    print("\nRuntime projection starts from the *filtered* sequence, so"
          "\nits projected documents shrink with the predicate's"
          "\nselectivity — the paper's Figure 10 reports ~5x.")


if __name__ == "__main__":
    main()
