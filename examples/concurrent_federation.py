"""Concurrent federation: 8 clients sharing one engine.

Run:  PYTHONPATH=src python examples/concurrent_federation.py

Eight tenants fire benchmark-query variants at the same two XMark data
peers through a :class:`FederationEngine`: a thread-pool scheduler with
admission control, a shared projection-aware result cache, and
cross-query Bulk-RPC batching, over a simulated wire that takes real
wall-clock time.
"""

import os

from repro import FederationEngine, SimulatedTransport
from repro.workloads import build_federation, multi_tenant_jobs

CLIENTS = 8
ROUNDS = 3
SCALE = float(os.environ.get("REPRO_EXAMPLE_SCALE", "0.005"))


def main() -> None:
    federation = build_federation(scale=SCALE)
    transport = SimulatedTransport(federation.cost_model,
                                   time_scale=0.05,
                                   extra_latency_s=0.002,
                                   per_peer_concurrency=4)
    jobs = multi_tenant_jobs(clients=CLIENTS, rounds=ROUNDS)
    print(f"{CLIENTS} clients x {ROUNDS} rounds "
          f"= {len(jobs)} federated queries\n")

    with FederationEngine(federation, max_workers=CLIENTS,
                          transport=transport) as engine:
        futures = [engine.submit(job.query, job.at, job.strategy)
                   for job in jobs]
        results = [future.result() for future in futures]

        sizes = [len(result.items) for result in results]
        print(f"result sizes: {min(sizes)}-{max(sizes)} items "
              f"across {len(results)} queries")
        print("\n--- fleet metrics ---")
        print(engine.metrics.format_summary())

        cache = engine.cache.snapshot()
        print("\n--- result cache ---")
        print(f"entries     : {cache['responses']} responses, "
              f"{cache['documents']} documents")
        print(f"hit rate    : {cache['hit_rate'] * 100:.0f}% "
              f"({cache['hits']} hits / {cache['misses']} misses)")
        print(f"saved       : {cache['saved_bytes']} bytes of wire traffic")

        batching = engine.batcher.snapshot()
        print("\n--- cross-query bulk batching ---")
        print(f"round trips : {batching['round_trips']} requested, "
              f"{batching['exchanges']} sent "
              f"({batching['coalesced']} coalesced)")

        print("\n--- wire bytes per peer ---")
        for peer, wire in engine.transport.wire_summary().items():
            print(f"{peer:>6}: {wire['total_bytes']} bytes "
                  f"in {wire['messages']} messages")


if __name__ == "__main__":
    main()
