"""CI trace smoke: run one traced query, validate the Chrome export.

Captures a span tree from a sharded federated query, checks the
trace-event schema invariants (``ts``/``dur`` present, numeric and
non-negative; every event carries ``name``/``ph``/``pid``/``tid``),
checks the attribution invariant (component leaves sum to the run's
``RunStats.times``), and writes both exports into the output directory
so CI uploads them as artifacts.

Usage::

    PYTHONPATH=src python benchmarks/trace_smoke.py [out_dir]

Exit code 0 = clean, 1 = invariant or schema violation. ``out_dir``
defaults to ``$BENCH_OUT_DIR`` or ``bench-results``.
"""

from __future__ import annotations

import os
import sys
from pathlib import Path

from repro.decompose import Strategy
from repro.obs.export import dump_chrome_trace, dump_trace, render_tree
from repro.obs.export import validate_chrome_trace
from repro.obs.trace import COMPONENTS
from repro.workloads import SHARDED_BENCHMARK_QUERY, build_sharded_federation

SCALE = float(os.environ.get("REPRO_TRACE_SMOKE_SCALE", "0.002"))
TOLERANCE = 1e-9


def main(out_dir: str | None = None) -> int:
    out = Path(out_dir or os.environ.get("BENCH_OUT_DIR", "bench-results"))
    out.mkdir(parents=True, exist_ok=True)

    federation = build_sharded_federation(SCALE)
    result = federation.run(SHARDED_BENCHMARK_QUERY, at="local",
                            strategy=Strategy.BY_PROJECTION, trace=True)
    root = result.trace
    problems: list[str] = []
    if root is None:
        problems.append("trace=True produced no span tree")
        print("FAIL: " + problems[0])
        return 1

    print(render_tree(root, max_depth=3))

    # Attribution invariant: leaves reproduce the Figure 8 breakdown.
    totals = root.component_totals()
    for component in COMPONENTS:
        leaves = totals.get(component, 0.0)
        recorded = getattr(result.stats.times, component)
        if abs(leaves - recorded) >= TOLERANCE:
            problems.append(
                f"component {component}: leaves {leaves} != "
                f"stats {recorded}")
    for span in root.iter_spans():
        if not span.closed:
            problems.append(f"span {span.name!r} never closed")

    dump_trace(root, out / "TRACE_smoke.json")
    chrome = dump_chrome_trace(root, out / "TRACE_smoke_chrome.json")
    problems.extend(validate_chrome_trace(chrome))

    events = chrome["traceEvents"]
    print(f"\n{len(events)} trace events -> {out / 'TRACE_smoke_chrome.json'}")
    if problems:
        print("FAIL:")
        for problem in problems:
            print(f"  - {problem}")
        return 1
    print("trace smoke: schema and attribution invariants hold")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1] if len(sys.argv) > 1 else None))
