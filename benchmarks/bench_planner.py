"""Cost-based planner benchmark: auto vs. the four fixed strategies.

Two cells, both emitted into ``BENCH_planner.json`` as an
estimated-vs-actual cost table:

* **Figure 7-9 workloads** — the Section VII semijoin over the scale
  sweep. ``strategy="auto"`` must land within 10% of the best fixed
  strategy at every scale (it picks per call site from document
  statistics, with no calibration warm-up).
* **Mixed multi-tenant workload** — tenants draw semijoin / tiny
  reference lookup / cross-document jobs. No single fixed strategy is
  right for all three shapes, so auto must beat *every* fixed strategy
  on the simulated total.
"""

import pytest

from repro.decompose import Strategy
from repro.workloads import (
    BENCHMARK_QUERY, build_federation, build_mixed_federation,
    mixed_tenant_jobs,
)

from benchmarks.conftest import SCALES, STRATEGY_ORDER, print_table, \
    write_json

#: Acceptance band: auto's simulated cost vs. the best fixed strategy.
AUTO_TOLERANCE = 1.10


def _run_cell(federation, query, strategy):
    result = federation.run(query, at="local", strategy=strategy)
    plan = result.stats.plan
    return {
        "strategy": (strategy.value if isinstance(strategy, Strategy)
                     else strategy),
        "chosen_plan": plan.strategy,
        "estimated_s": plan.estimated_s,
        "actual_s": result.stats.times.total,
        "estimated_bytes": plan.estimated_bytes,
        "actual_bytes": result.stats.total_transferred_bytes,
    }


@pytest.fixture(scope="module")
def figure_rows():
    return _figure_workloads()


@pytest.fixture(scope="module")
def mixed_rows():
    return _mixed_workload()


def _figure_workloads():
    rows = []
    table = []
    for scale in SCALES:
        cells = {}
        for strategy in STRATEGY_ORDER:
            # One fresh federation per fixed cell: no calibration
            # leakage between strategies.
            cell = _run_cell(build_federation(scale), BENCHMARK_QUERY,
                             strategy)
            cells[cell["strategy"]] = cell
        auto = _run_cell(build_federation(scale), BENCHMARK_QUERY, "auto")
        cells["auto"] = auto
        best = min((cells[s.value]["actual_s"] for s in STRATEGY_ORDER))
        rows.extend({"workload": "figure7-9", "scale": scale, **cell}
                    for cell in cells.values())
        table.append([
            f"{scale:g}", auto["chosen_plan"],
            f"{best * 1e3:.3f}", f"{auto['actual_s'] * 1e3:.3f}",
            f"{auto['estimated_s'] * 1e3:.3f}",
            f"{auto['actual_s'] / best:.3f}",
        ])

    print_table(
        "Planner vs fixed strategies (Figure 7-9 workloads, ms)",
        ["scale", "auto chose", "best fixed", "auto actual",
         "auto estimate", "ratio"], table)
    return rows


def _mixed_workload():
    jobs = mixed_tenant_jobs(clients=6, rounds=2)
    rows = []
    totals = {}
    for strategy in list(STRATEGY_ORDER) + ["auto"]:
        federation = build_mixed_federation(0.01)
        simulated = 0.0
        estimated = 0.0
        picks: dict[str, int] = {}
        for job in jobs:
            result = federation.run(job.query, at=job.at,
                                    strategy=strategy)
            plan = result.stats.plan
            simulated += result.stats.times.total
            estimated += plan.estimated_s
            picks[plan.strategy] = picks.get(plan.strategy, 0) + 1
        label = (strategy.value if isinstance(strategy, Strategy)
                 else strategy)
        totals[label] = simulated
        rows.append({
            "workload": "mixed-multi-tenant", "scale": 0.01,
            "strategy": label, "jobs": len(jobs),
            "estimated_s": estimated, "actual_s": simulated,
            "plans": picks,
        })

    print_table(
        "Mixed multi-tenant workload: simulated total (ms)",
        ["strategy", "total"],
        [[label, f"{total * 1e3:.3f}"]
         for label, total in sorted(totals.items(), key=lambda kv: kv[1])])

    return rows


def test_planner_figure_workloads(figure_rows):
    """The acceptance criterion: at every scale, a cold planner's
    auto pick lands within 10% of the best fixed strategy, and every
    run exposes its chosen plan + estimate."""
    assert len(figure_rows) == len(SCALES) * 5
    for scale in SCALES:
        cells = {row["strategy"]: row for row in figure_rows
                 if row["scale"] == scale}
        best = min(cells[s.value]["actual_s"] for s in STRATEGY_ORDER)
        auto = cells["auto"]
        assert auto["actual_s"] <= AUTO_TOLERANCE * best, (
            f"auto ({auto['chosen_plan']}) cost {auto['actual_s']:.6f}s "
            f"vs best fixed {best:.6f}s at scale {scale}")
        for row in cells.values():
            assert row["chosen_plan"] and row["estimated_s"] > 0


def test_planner_mixed_workload(mixed_rows):
    """On the mixed tenant mix, per-query auto picks must beat every
    single fixed strategy's simulated total."""
    totals = {row["strategy"]: row["actual_s"] for row in mixed_rows}
    best_fixed = min(total for label, total in totals.items()
                     if label != "auto")
    assert totals["auto"] < best_fixed, (
        f"auto {totals['auto']:.6f}s must beat every fixed strategy "
        f"(best fixed {best_fixed:.6f}s)")


def test_planner_write_json(figure_rows, mixed_rows):
    write_json("planner", figure_rows + mixed_rows,
               scales=list(SCALES), tolerance=AUTO_TOLERANCE)


def test_planner_overhead_timing(benchmark):
    """Planning overhead on the repeated-query path (plan cache warm)."""
    federation = build_federation(SCALES[0])
    federation.run(BENCHMARK_QUERY, at="local", strategy="auto")
    benchmark(lambda: federation.run(BENCHMARK_QUERY, at="local",
                                     strategy="auto"))
