"""Columnar kernels vs. per-node list iteration, and larger-than-memory
serving under the buffer pool.

Two tables:

* **kernel cells** — each batch kernel against the per-node
  (node-handle / row-at-a-time) implementation of the same scan on an
  XMark people document: descendant-interval sweep, child scan,
  predicate probe, gather-merge, document-order sort. Results must be
  identical and every cell must clear the ``MIN_SPEEDUP`` floor —
  these ratios are what the regression guard pins.
* **max-RSS cell** — the (people, auctions) pair is spilled to XCOL1
  files at least :data:`MIN_CORPUS_FACTOR`× the buffer-pool budget,
  then a **subprocess** (peak RSS is a process high-water mark)
  reopens them through one shared pool and answers streaming queries.
  Every answer must match the in-memory truth (zero wrong answers) and
  the subprocess's RSS growth over an import-only baseline must stay
  under half the corpus size — the corpus was served, not resided.
"""

from __future__ import annotations

import json
import random
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.xmark.generator import XMarkConfig, generate_people
from repro.xmldb import axes, kernels
from repro.xmldb.index import structural_index
from repro.xmldb.kernels import pre_array
from repro.xmldb.node import Node, NodeKind
from repro.xmldb.values import value_index

from benchmarks.conftest import print_table, write_json

SCALE = 0.2
REPEATS = 3
ITERATIONS = 5
MIN_SPEEDUP = 3.0

#: RSS cell sizing: the corpus must be at least this many times the
#: buffer-pool budget for the cell to prove anything.
RSS_SCALE = 2.0
MIN_CORPUS_FACTOR = 5


def _best_ms(run, iterations: int = ITERATIONS) -> float:
    best = float("inf")
    for _ in range(REPEATS):
        started = time.perf_counter()
        for _ in range(iterations):
            run()
        best = min(best, (time.perf_counter() - started) / iterations)
    return best * 1000.0


def _cell(label: str, naive, columnar, naive_iters: int = ITERATIONS,
          col_iters: int = 50) -> dict:
    expected = list(naive())
    got = list(columnar())
    assert got == expected, label
    naive_ms = _best_ms(naive, naive_iters)
    col_ms = _best_ms(columnar, col_iters)
    speedup = naive_ms / col_ms if col_ms else float("inf")
    return {
        "kernel": label,
        "naive_ms": round(naive_ms, 4),
        "columnar_ms": round(col_ms, 4),
        "speedup": round(speedup, 1),
        "result_items": len(expected),
    }


def test_kernel_speedups():
    doc = generate_people(XMarkConfig(scale=SCALE))
    index = structural_index(doc)
    sizes, parents = doc.sizes, doc.parents
    kinds, names, values = doc.kinds, doc.names, doc.values
    ELEMENT, TEXT = NodeKind.ELEMENT, NodeKind.TEXT

    cells = []

    # descendant sweep: //regions//name ∪ //people//name.
    contexts = kernels.merge_sorted([index.tag_pres["regions"],
                                     index.tag_pres["people"]])
    name_pres = index.tag_pres["name"]

    def naive_sweep():
        return [pre
                for context in contexts
                for pre in range(context + 1, context + sizes[context] + 1)
                if kinds[pre] == ELEMENT and names[pre] == "name"]

    cells.append(_cell(
        "descendant-sweep", naive_sweep,
        lambda: kernels.subtree_sweep(name_pres, contexts, sizes),
        col_iters=500))

    # child scan: person/age through node handles vs. the kernel.
    persons = index.tag_pres["person"]
    ages = index.tag_pres["age"]

    def naive_child():
        out = []
        for context in persons:
            for child in axes.child(Node(doc, context)):
                pre = child.pre
                if kinds[pre] == ELEMENT and names[pre] == "age":
                    out.append(pre)
        return out

    cells.append(_cell(
        "child-scan", naive_child,
        lambda: kernels.children_of(ages, persons, sizes, parents)))

    # predicate probe: age < 40 — full column coerce-and-compare vs.
    # one bisect pair on the value-sorted column.
    vindex = value_index(doc)
    vindex.probe("age", "<", 40.0)  # build the column once (cached)

    def naive_probe():
        out = []
        for pre in ages:
            if sizes[pre] >= 1 and kinds[pre + 1] == TEXT:
                try:
                    number = float(values[pre + 1])
                except ValueError:
                    continue
                if number < 40.0:
                    out.append(pre)
        return out

    cells.append(_cell(
        "predicate-probe", naive_probe,
        lambda: vindex.probe("age", "<", 40.0),
        naive_iters=50, col_iters=500))

    # gather-merge: six per-tag pre lists into one document-ordered
    # column — node-handle set + handle sort vs. the k-way merge.
    tag_lists = [index.tag_pres[tag]
                 for tag in ("person", "item", "category", "name",
                             "text", "age")]

    def naive_merge():
        handles = {Node(doc, pre) for pres in tag_lists for pre in pres}
        return [node.pre for node in sorted(handles)]

    cells.append(_cell("gather-merge", naive_merge,
                       lambda: kernels.merge_sorted(tag_lists),
                       col_iters=20))

    # document-order sort: a shuffled duplicate-carrying pre column.
    mixed = [pre for pres in tag_lists for pre in pres]
    random.Random(3).shuffle(mixed)
    mixed_column = pre_array(mixed)

    def naive_sort():
        handles = {Node(doc, pre) for pre in mixed}
        return [node.pre for node in sorted(handles)]

    cells.append(_cell("doc-order-sort", naive_sort,
                       lambda: kernels.ensure_sorted(mixed_column),
                       col_iters=20))

    rows = [[cell["kernel"], f"{cell['naive_ms']:.3f}",
             f"{cell['columnar_ms']:.4f}", f"x{cell['speedup']:.1f}",
             cell["result_items"]] for cell in cells]
    print_table(
        f"Kernels: per-node lists vs typed columns (XMark scale {SCALE}, "
        f"accelerator={kernels.accelerator()})",
        ["kernel", "naive ms", "columnar ms", "speedup", "items"], rows)

    rss_cell = _max_rss_cell()
    print_table(
        "Larger-than-memory: spilled corpus served under a pool budget",
        ["metric", "value"],
        [["corpus bytes", rss_cell["corpus_bytes"]],
         ["pool budget bytes", rss_cell["budget_bytes"]],
         ["corpus / budget", f"x{rss_cell['corpus_over_budget']:.1f}"],
         ["baseline max-RSS KiB", rss_cell["baseline_maxrss_kib"]],
         ["serving max-RSS KiB", rss_cell["serving_maxrss_kib"]],
         ["RSS growth bytes", rss_cell["rss_growth_bytes"]],
         ["pool evictions", rss_cell["pool_evictions"]],
         ["wrong answers", rss_cell["wrong_answers"]]])

    write_json("columnar", cells + [rss_cell], scale=SCALE,
               rss_scale=RSS_SCALE, min_speedup=MIN_SPEEDUP,
               accelerator=kernels.accelerator())

    worst = min(cell["speedup"] for cell in cells)
    assert worst >= MIN_SPEEDUP, (
        f"kernel speedup fell to x{worst:.1f} (floor x{MIN_SPEEDUP})")
    assert rss_cell["wrong_answers"] == 0
    assert rss_cell["rss_growth_bytes"] < rss_cell["corpus_bytes"] // 2, (
        "serving RSS grew by more than half the corpus — the buffer "
        "pool is not bounding residency")


# ---------------------------------------------------------------------------
# Max-RSS subprocess cell
# ---------------------------------------------------------------------------

#: Run in a subprocess because peak RSS is a process-lifetime high-water
#: mark; the child reads ``VmHWM`` from ``/proc/self/status`` because
#: Linux does **not** reset ``ru_maxrss`` across exec — a child spawned
#: from a large pytest parent would inherit the parent's peak and mask
#: the measurement. argv: mode people_path auctions_path budget_bytes.
_CHILD = """
import json, sys
from repro.xmldb.node import NodeKind
from repro.xmldb.pool import BufferPool, ColumnStore

def peak_rss_kib():
    try:
        with open("/proc/self/status") as status:
            for line in status:
                if line.startswith("VmHWM:"):
                    return int(line.split()[1])
    except OSError:
        pass
    import resource
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss

def young_count(doc):
    # Streaming predicate scan (no index — an index would resident the
    # whole pre list in heap and defeat the residency measurement).
    ELEMENT, TEXT = NodeKind.ELEMENT, NodeKind.TEXT
    young = 0
    after_age = False
    for kind, name, value in zip(doc.kinds, doc.names, doc.values):
        if after_age and kind == TEXT:
            try:
                if float(value) < 40.0:
                    young += 1
            except ValueError:
                pass
        after_age = kind == ELEMENT and name == "age"
    return young

mode, people_path, auctions_path, budget = sys.argv[1:5]
answers = {}
evictions = 0
if mode == "serve":
    pool = BufferPool(int(budget))
    with ColumnStore.open(people_path, pool=pool) as s1, \\
            ColumnStore.open(auctions_path, pool=pool) as s2:
        d1, d2 = s1.document, s2.document
        answers["person_count"] = sum(
            1 for name in d1.names if name == "person")
        answers["young_count"] = young_count(d1)
        answers["value_chars"] = (sum(len(v) for v in d1.values)
                                  + sum(len(v) for v in d2.values))
        answers["size_sum"] = sum(d1.sizes) + sum(d2.sizes)
        evictions = pool.stats()["evictions"]
print(json.dumps({"answers": answers, "maxrss_kib": peak_rss_kib(),
                  "evictions": evictions}))
"""


def _run_child(mode: str, people: Path, auctions: Path,
               budget: int) -> dict:
    result = subprocess.run(
        [sys.executable, "-c", _CHILD, mode, str(people), str(auctions),
         str(budget)],
        capture_output=True, text=True, check=True,
        env={"PYTHONPATH": "src", "PATH": "/usr/bin:/bin"})
    return json.loads(result.stdout)


def _max_rss_cell() -> dict:
    import tempfile

    from repro.xmark.generator import (XMarkConfig, generate_auctions,
                                       generate_people, spill_auctions,
                                       spill_people)

    config = XMarkConfig(scale=RSS_SCALE)
    with tempfile.TemporaryDirectory() as tmp:
        people_path = Path(tmp) / "people.xcol"
        auctions_path = Path(tmp) / "auctions.xcol"
        corpus = (spill_people(config, people_path)
                  + spill_auctions(config, auctions_path))
        budget = corpus // (MIN_CORPUS_FACTOR + 1)
        assert corpus >= MIN_CORPUS_FACTOR * budget

        people = generate_people(config)
        auctions = generate_auctions(config)
        expected = {
            "person_count": sum(1 for n in people.names if n == "person"),
            "young_count": len(value_index(people).probe("age", "<", 40.0)),
            "value_chars": (sum(len(v) for v in people.values)
                            + sum(len(v) for v in auctions.values)),
            "size_sum": sum(people.sizes) + sum(auctions.sizes),
        }
        del people, auctions

        baseline = _run_child("baseline", people_path, auctions_path,
                              budget)
        serving = _run_child("serve", people_path, auctions_path, budget)

    wrong = sum(1 for key, value in expected.items()
                if serving["answers"].get(key) != value)
    growth_bytes = (serving["maxrss_kib"] - baseline["maxrss_kib"]) * 1024
    return {
        "kernel": "max-rss-serving",
        "corpus_bytes": corpus,
        "budget_bytes": budget,
        "corpus_over_budget": round(corpus / budget, 1),
        "baseline_maxrss_kib": baseline["maxrss_kib"],
        "serving_maxrss_kib": serving["maxrss_kib"],
        "rss_growth_bytes": growth_bytes,
        "pool_evictions": serving["evictions"],
        "wrong_answers": wrong,
        "result_items": serving["answers"].get("person_count", -1),
    }


if __name__ == "__main__":  # pragma: no cover - direct invocation
    raise SystemExit(pytest.main([__file__, "-q", "-s"]))
