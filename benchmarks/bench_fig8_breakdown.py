"""Figure 8 — Query time breakdown at the largest document size.

Paper: five stacked components (shred / local exec / (de)serialize /
remote exec / network) per strategy, log scale. Expected shape: shred
dominates data-shipping (>99%) and by-value; fragment/projection cut
total time by 84-94%; projection beats fragment by ~35%.
"""

from repro.decompose import Strategy
from repro.workloads import build_federation, run_strategy

from benchmarks.conftest import SCALES, STRATEGY_ORDER, print_table

COMPONENTS = ("shred", "local exec", "(de)serialize", "remote exec",
              "network")


def test_fig8_breakdown(sweep):
    runs = sweep[SCALES[-1]]
    rows = []
    for strategy in STRATEGY_ORDER:
        times = runs[strategy].stats.times.as_dict()
        row = [strategy.value]
        row.extend(f"{times[c] * 1000:.2f}" for c in COMPONENTS)
        row.append(f"{runs[strategy].stats.times.total * 1000:.2f}")
        rows.append(row)
    print_table(
        f"Figure 8: time breakdown at largest size (ms, scale "
        f"{SCALES[-1]})",
        ["strategy"] + list(COMPONENTS) + ["total"], rows)

    times = {s: runs[s].stats.times for s in STRATEGY_ORDER}
    # Shred dominates data shipping.
    shipping = times[Strategy.DATA_SHIPPING]
    assert shipping.shred > 0.5 * shipping.total
    # Fragment/projection pay no shredding and win big overall.
    assert times[Strategy.BY_FRAGMENT].shred == 0
    assert times[Strategy.BY_FRAGMENT].total < 0.6 * shipping.total
    assert times[Strategy.BY_PROJECTION].total < \
        times[Strategy.BY_FRAGMENT].total


def test_fig8_remote_exec_only_under_function_shipping(sweep):
    runs = sweep[SCALES[-1]]
    assert runs[Strategy.DATA_SHIPPING].stats.times.remote_exec == 0
    assert runs[Strategy.BY_FRAGMENT].stats.times.remote_exec > 0


def test_fig8_timing(benchmark):
    federation = build_federation(SCALES[0])
    benchmark(lambda: run_strategy(federation, Strategy.BY_FRAGMENT))
