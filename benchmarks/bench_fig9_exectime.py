"""Figure 9 — Execution time over increasing document sizes.

Paper: total time per strategy at every size, log scale. Expected
shape: the two enhanced strategies beat data-shipping at every size
("even on small documents the proposed techniques are preferred"), and
projection beats fragment throughout.
"""

from repro.decompose import Strategy
from repro.workloads import build_federation, run_strategy

from benchmarks.conftest import SCALES, STRATEGY_ORDER, print_table


def test_fig9_series(sweep):
    rows = []
    for runs in sweep.values():
        docs = runs[Strategy.DATA_SHIPPING].total_document_bytes
        row = [f"{docs/1024:.0f} KB"]
        row.extend(f"{runs[s].stats.times.total * 1000:.2f}"
                   for s in STRATEGY_ORDER)
        rows.append(row)
    print_table("Figure 9: total execution time per query (ms)",
                ["docs total"] + [s.value for s in STRATEGY_ORDER], rows)

    for runs in sweep.values():
        totals = {s: runs[s].stats.times.total for s in STRATEGY_ORDER}
        assert totals[Strategy.BY_FRAGMENT] < \
            totals[Strategy.DATA_SHIPPING]
        assert totals[Strategy.BY_PROJECTION] < \
            totals[Strategy.BY_FRAGMENT]


def test_fig9_speedup_range(sweep):
    """The paper reports 84-94% improvement at the largest size; our
    simulated substrate should land in a comparable band (>50%)."""
    runs = sweep[SCALES[-1]]
    shipping = runs[Strategy.DATA_SHIPPING].stats.times.total
    for strategy in (Strategy.BY_FRAGMENT, Strategy.BY_PROJECTION):
        improvement = 1 - runs[strategy].stats.times.total / shipping
        assert improvement > 0.5, f"{strategy.value}: {improvement:.0%}"


def test_fig9_timing(benchmark):
    federation = build_federation(SCALES[1])
    benchmark(lambda: run_strategy(federation, Strategy.DATA_SHIPPING))
