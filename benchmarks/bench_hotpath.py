"""Hot-path speedup: indexed set-at-a-time execution vs. the naive
tree-walking evaluator on descendant-heavy XMark queries.

This is the PR's acceptance benchmark: the structural-index engine
(`repro.xmldb.index` + the evaluator's pre-array pipeline) must beat
the pre-PR per-node evaluator — retained verbatim behind
``use_index=False`` — by ≥3× on descendant-heavy queries, with
deep-equal results. A second table measures the memoized serializer:
repeated subtree serialisation (the bulk-RPC fragment pattern) against
cold re-walks.

Wall-clock per query is a best-of-``REPEATS`` of a fixed iteration
count; the emitted ``BENCH_hotpath.json`` carries the before/after
table (machine-dependent milliseconds, machine-stable ratios — the
regression guard enforces only the ratios).
"""

from __future__ import annotations

import time

from repro.xmark.generator import generate_pair
from repro.xmldb.node import Node
from repro.xmldb.serializer import serialize, serialize_node
from repro.xmldb.index import structural_index
from repro.xquery.context import DynamicContext
from repro.xquery.evaluator import Evaluator
from repro.xquery.parser import parse_query

from benchmarks.conftest import print_table, write_json

SCALE = 0.02
REPEATS = 3
ITERATIONS = 10

#: (label, query, descendant_heavy) — the speedup floor applies to the
#: descendant-heavy subset; the rest is reported for context.
QUERIES = [
    ("count-persons",
     'count(doc("people.xml")//person)', True),
    ("person-names",
     'doc("people.xml")//person/name', True),
    ("deep-interests",
     'doc("people.xml")//profile//interest', True),
    ("auction-increases",
     'doc("auctions.xml")//open_auction//bidder/increase', True),
    ("annotation-text",
     'doc("auctions.xml")//annotation//description//text()', True),
    ("seller-refs",
     'doc("auctions.xml")//seller/attribute::person', True),
    ("rooted-child-chain",
     'doc("people.xml")/child::site/child::people/child::person', False),
    ("filtered-persons",
     'doc("people.xml")//person[descendant::age < 40]/name', False),
]

MIN_SPEEDUP = 3.0


def _runner(module, docs, use_index: bool):
    evaluator = Evaluator(module, use_index=use_index)

    def run():
        env = DynamicContext(resolve_doc=docs.__getitem__)
        return evaluator.run(env)

    return run


def _best_ms(run) -> float:
    best = float("inf")
    for _ in range(REPEATS):
        started = time.perf_counter()
        for _ in range(ITERATIONS):
            run()
        best = min(best, (time.perf_counter() - started) / ITERATIONS)
    return best * 1000.0


def _result_key(items):
    return [(item.doc.uri, item.pre) if isinstance(item, Node) else item
            for item in items]


def test_hotpath_speedup():
    people, auctions = generate_pair(SCALE)
    docs = {"people.xml": people, "auctions.xml": auctions}

    cells = []
    rows = []
    heavy_speedups = []
    for label, query, heavy in QUERIES:
        module = parse_query(query)
        indexed = _runner(module, docs, use_index=True)
        naive = _runner(module, docs, use_index=False)
        assert _result_key(indexed()) == _result_key(naive()), label
        indexed_ms = _best_ms(indexed)
        naive_ms = _best_ms(naive)
        speedup = naive_ms / indexed_ms if indexed_ms else float("inf")
        if heavy:
            heavy_speedups.append(speedup)
        cells.append({
            "query": label,
            "descendant_heavy": heavy,
            "naive_ms": round(naive_ms, 3),
            "indexed_ms": round(indexed_ms, 3),
            "speedup": round(speedup, 1),
            "result_items": len(indexed()),
        })
        rows.append([label, "yes" if heavy else "no",
                     f"{naive_ms:.2f}", f"{indexed_ms:.2f}",
                     f"x{speedup:.1f}"])

    serializer_cell = _serializer_cell(people)
    cells.append(serializer_cell)
    rows.append(["serialize-members", "-",
                 f"{serializer_cell['naive_ms']:.2f}",
                 f"{serializer_cell['indexed_ms']:.2f}",
                 f"x{serializer_cell['speedup']:.1f}"])

    print_table(
        f"Hot path: naive vs indexed evaluator (XMark scale {SCALE})",
        ["query", "heavy", "naive ms", "indexed ms", "speedup"], rows)
    write_json("hotpath", cells, scale=SCALE, iterations=ITERATIONS,
               min_speedup=MIN_SPEEDUP)

    worst = min(heavy_speedups)
    assert worst >= MIN_SPEEDUP, (
        f"descendant-heavy speedup fell to x{worst:.1f} "
        f"(floor x{MIN_SPEEDUP})")


def _serializer_cell(doc) -> dict:
    """Bulk-RPC shape: serialise every person subtree, repeatedly."""
    person_pres = structural_index(doc).tag_pres["person"]

    def memoized():
        serialize(doc)  # span table (memoized after the first call)
        return [serialize_node(Node(doc, pre)) for pre in person_pres]

    def cold():
        doc.invalidate_caches()
        return [serialize_node(Node(doc, pre)) for pre in person_pres]

    assert memoized() == cold()
    memoized_ms = _best_ms(memoized)
    cold_ms = _best_ms(cold)
    doc.invalidate_caches()
    speedup = cold_ms / memoized_ms if memoized_ms else float("inf")
    return {
        "query": "serialize-members",
        "descendant_heavy": False,
        "naive_ms": round(cold_ms, 3),
        "indexed_ms": round(memoized_ms, 3),
        "speedup": round(speedup, 1),
        "result_items": len(person_pres),
    }
