"""Figure 11 — Projection execution time.

Paper: runtime projection's extra XPath evaluation "pays off due to
the more precise results" — end-to-end it stays competitive with (and
for larger documents better than) compile-time projection, because
the smaller projected document saves serialisation work downstream.

We measure the full projected-serialisation pipeline (path evaluation
+ Algorithm 1 + serialisation), which is what the message sender runs.
"""

import time

import pytest

from repro.xmark import XMarkConfig, generate_people
from repro.xmldb.serializer import serialize_node

from benchmarks.bench_fig10_precision import (
    compile_time_projection, runtime_projection,
)
from benchmarks.conftest import print_table

SCALES = (0.0025, 0.005, 0.01, 0.02)


@pytest.fixture(scope="module")
def documents():
    return {scale: generate_people(XMarkConfig(scale=scale))
            for scale in SCALES}


def _measure(fn, doc) -> float:
    start = time.perf_counter()
    result = fn(doc)
    serialize_node(result.doc.root)  # downstream serialisation cost
    return time.perf_counter() - start


def test_fig11_series(documents):
    rows = []
    for scale, doc in documents.items():
        compile_ms = min(_measure(compile_time_projection, doc)
                         for _ in range(3)) * 1000
        runtime_ms = min(_measure(runtime_projection, doc)
                         for _ in range(3)) * 1000
        rows.append([f"{scale}", f"{compile_ms:.2f}",
                     f"{runtime_ms:.2f}"])
    print_table("Figure 11: projection execution time (ms)",
                ["scale", "compile-time", "runtime"], rows)

    # The investment in runtime XPath evaluation pays off: within 2x
    # of compile-time end to end (the paper shows it winning outright
    # on its C substrate; our Python predicate evaluation is pricier).
    doc = documents[SCALES[-1]]
    compile_s = min(_measure(compile_time_projection, doc)
                    for _ in range(3))
    runtime_s = min(_measure(runtime_projection, doc) for _ in range(3))
    assert runtime_s < 2.5 * compile_s


def test_fig11_timing(benchmark, documents):
    doc = documents[SCALES[0]]
    benchmark(lambda: _measure(runtime_projection, doc))
