"""CI chaos smoke: detect → evict → re-replicate → serve, end to end.

The self-healing pipeline against the sharded XMark cluster with the
full observability stack attached:

1. **warmup** — healthy fleet, answers byte-exact vs a single-owner
   oracle, zero failovers.
2. **degrade** — catalog marks steer two shards exclusively onto a
   slowed replica; the SLO burn-rate alert must fire exactly once
   (and not flap) while answers stay correct.
3. **kill → heal** — a replica is killed outright. The failure
   detector's probe ticks walk it alive → suspect → dead → evicted
   (catalog epoch bumps at each health transition), the repair engine
   re-replicates every fragment it held onto healthy peers, and the
   healed fleet then serves the workload with **zero failovers** —
   the router never selects the evicted replica again.
4. **revive** — the evicted peer returns, rejoins as a target (its
   placements were already repaired away), and the fleet stays
   converged.

Zero wrong answers throughout; exactly one ``replica_evicted`` and
one ``alert_fired`` event; every shard back at target replication.
Event JSONL is written into the output directory for CI artifacts.

Usage::

    PYTHONPATH=src python benchmarks/chaos_smoke.py [out_dir]

Exit code 0 = clean, 1 = any invariant violated. ``out_dir`` defaults
to ``$BENCH_OUT_DIR`` or ``bench-results``.
"""

from __future__ import annotations

import os
import sys
from pathlib import Path

from repro.cluster.membership import ALIVE, EVICTED, MembershipTracker
from repro.cluster.repair import RepairEngine
from repro.decompose import Strategy
from repro.obs import SLO, BurnRatePolicy, FleetMonitor, render_fleet
from repro.runtime import FederationEngine
from repro.workloads import (
    SHARDED_SCAN_QUERY, build_federation, build_sharded_federation,
)
from repro.xquery.xdm import serialize_sequence

SCALE = float(os.environ.get("REPRO_CHAOS_SMOKE_SCALE", "0.002"))
SEED = 20090329

#: Same latency ladder as the soak smoke: injected delay far above the
#: testbed's sub-ms baseline, slow-query threshold between the two.
DEGRADE_S = 0.080
SLOW_S = 0.030


def run_batch(engine, n: int) -> set[str]:
    futures = [engine.submit(SHARDED_SCAN_QUERY, at="local",
                             strategy=Strategy.BY_PROJECTION)
               for _ in range(n)]
    return {serialize_sequence(f.result().items) for f in futures}


def main(out_dir: str | None = None) -> int:
    out = Path(out_dir or os.environ.get("BENCH_OUT_DIR", "bench-results"))
    out.mkdir(parents=True, exist_ok=True)

    cluster = build_sharded_federation(SCALE, seed=SEED)
    monitor = FleetMonitor(slow_query_s=SLOW_S,
                           profile_every=4).attach(cluster)
    monitor.add_slo(
        SLO(name="latency", target=0.9, threshold_s=SLOW_S),
        BurnRatePolicy(long_s=60.0, short_s=1.0, threshold=2.0,
                       resolve_ratio=0.5, min_requests=5))
    tracker = MembershipTracker().attach(cluster)
    repair = RepairEngine().attach(cluster)

    single = build_federation(SCALE, seed=SEED)
    oracle = serialize_sequence(single.run(
        SHARDED_SCAN_QUERY.replace("xrpc://people-c", "xrpc://peer1"),
        at="local", strategy=Strategy.BY_PROJECTION).items)

    problems: list[str] = []

    def check(ok: bool, what: str) -> None:
        if not ok:
            problems.append(what)

    victim_fragments = sum(
        1 for spec in cluster.catalog.collections()
        for shard in spec.shards if "node1" in shard.replicas)

    with FederationEngine(cluster, max_workers=2, cache=False,
                          batch_window_s=0.0) as engine:
        # Phase 1 — healthy warmup against the single-owner oracle.
        check(run_batch(engine, 8) == {oracle}, "warmup answers wrong")
        check(engine.metrics.summary()["failovers"] == 0,
              "failovers during healthy warmup")
        print("phase 1 (warmup): 8 queries, answers match the "
              "single-owner oracle")

        # Phase 2 — degrade, not dead: sustained latency breach must
        # fire the burn-rate alert exactly once; the failure detector
        # must NOT kill a slow-but-answering peer.
        cluster.catalog.mark_down("node1")
        cluster.catalog.mark_down("node3")
        cluster.transport.degrade_peer("node2", DEGRADE_S)
        check(run_batch(engine, 6) == {oracle},
              "degrade-phase answers wrong")
        tracker.tick()
        check(tracker.state("node2") == ALIVE,
              f"degraded (not dead) peer misjudged: "
              f"{tracker.state('node2')}")
        check(monitor.events.count("alert_fired") == 1,
              f"alert fired {monitor.events.count('alert_fired')}x, "
              "want exactly 1")
        cluster.catalog.mark_up("node1")
        cluster.catalog.mark_up("node3")
        cluster.transport.restore_peer("node2")
        print("phase 2 (degrade): burn-rate alert fired once, "
              "node2 still judged alive")

        # Phase 3 — kill node1 and let the pipeline heal: probe ticks
        # walk the state ladder to eviction; the eviction subscription
        # triggers re-replication of every fragment node1 held.
        epoch_before = cluster.catalog.epoch()
        cluster.transport.kill_peer("node1")
        ticks = 0
        while tracker.state("node1") != EVICTED and ticks < 12:
            tracker.tick()
            ticks += 1
        check(tracker.state("node1") == EVICTED,
              f"node1 not evicted after {ticks} ticks "
              f"(state {tracker.state('node1')})")
        check(cluster.catalog.epoch() > epoch_before,
              "eviction bumped no catalog epoch")
        check(repair.run_until_converged(),
              "repair did not restore target replication")
        repairs = repair.stats()
        check(repairs["completed"] == victim_fragments,
              f"{repairs['completed']} repairs for "
              f"{victim_fragments} lost fragments")
        for spec in cluster.catalog.collections():
            for shard in spec.shards:
                live = [r for r in shard.replicas if r != "node1"]
                check(len(live) >= spec.target_replication,
                      f"{spec.name}#s{shard.index} under-replicated "
                      f"after repair: {shard.replicas}")
        print(f"phase 3 (kill): node1 evicted after {ticks} probe "
              f"ticks, {repairs['completed']} fragments re-replicated")

        # Healed fleet serves with zero failovers: the router must
        # never even try the evicted replica.
        before = engine.metrics.summary()["failovers"]
        check(run_batch(engine, 8) == {oracle},
              "post-repair answers wrong")
        after = engine.metrics.summary()["failovers"]
        check(after == before,
              f"{after - before} failovers serving from the healed "
              "fleet (evicted replica still being selected)")
        print("phase 4 (serve): 8 queries on the healed fleet, "
              "zero failovers")

        # Phase 5 — node1 returns: rejoin keeps the fleet converged.
        cluster.transport.revive_peer("node1")
        tracker.rejoin("node1")
        for _ in range(3):
            tracker.tick()
        check(tracker.state("node1") == ALIVE, "revived peer not alive")
        check(tracker.converged(), "membership did not re-converge")
        check(run_batch(engine, 4) == {oracle},
              "post-revive answers wrong")
        check(engine.metrics.summary()["failed"] == 0,
              "queries failed during the chaos smoke")
        print("phase 5 (revive): node1 rejoined, fleet converged")

    check(monitor.events.count("alert_fired") == 1,
          "burn-rate alert flapped")
    check(monitor.events.count("replica_evicted") == 1,
          f"{monitor.events.count('replica_evicted')} eviction events, "
          "want exactly 1")
    check(monitor.events.count("repair_completed") == victim_fragments,
          "repair_completed events do not match repaired fragments")

    events_path = out / "EVENTS_chaos.jsonl"
    written = monitor.events.export_jsonl(events_path)
    print(f"\n{written} events -> {events_path}")

    print("\n" + render_fleet(monitor))
    if problems:
        print("FAIL:")
        for problem in problems:
            print(f"  - {problem}")
        return 1
    print("chaos smoke: detect -> evict -> re-replicate -> serve holds")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1] if len(sys.argv) > 1 else None))
