"""Rebalance benchmark: elastic operations drilled deterministically.

Not a paper figure — this drills the online-resharding layer end to
end and pins its outcome counts as a regression baseline:

* **rebalance_drill** — the scripted elastic sequence against the
  sharded XMark testbed: hot-tenant skew observed by the planner, the
  nominated split executed, a replica moved to the coolest peer, a
  peer drained to empty. Every phase's answers are checked byte-exact
  against a single-owner oracle, and the executed split/move/retire
  counts are deterministic.
* **chaos_reshard_soak** — the chaos schedule extended with seeded
  split/move/drain events interleaved with kills and revives: zero
  wrong answers, zero failed migrations, convergence to target
  replication on the healthy fleet.

Emitted to ``BENCH_rebalance.json``: the deterministic outcome counts
(``result_items`` is baseline-enforced exactly) plus informational
latency percentiles over the chaos workload.
"""

import random

from repro.cluster.chaos import ChaosHarness, ChaosSchedule
from repro.cluster.membership import MembershipTracker
from repro.cluster.rebalance import Rebalancer, SplitPlan
from repro.cluster.repair import RepairEngine
from repro.decompose import Strategy
from repro.obs import FleetMonitor
from repro.workloads import (
    SHARDED_HOT_QUERY, SHARDED_SCAN_QUERY, build_federation,
    build_sharded_federation,
)
from repro.xquery.xdm import serialize_sequence

from benchmarks.conftest import print_table, write_json

SEED = 20090329
DRILL_SCALE = 0.01     # hot shard must have >= 4 members to split
CHAOS_SCALE = 0.002
CHAOS_STEPS = 36
NODES = ["node1", "node2", "node3", "node4"]

COUNT_QUERY = ('count(doc("xrpc://people-c/people.xml")'
               "/child::site/child::people/child::person)")


def _oracle(scale: float, query: str) -> str:
    single = build_federation(scale, seed=SEED)
    rehosted = query.replace("xrpc://people-c", "xrpc://peer1")
    result = single.run(rehosted, at="local",
                        strategy=Strategy.BY_PROJECTION)
    return serialize_sequence(result.items)


def _build_cluster(scale: float):
    cluster = build_sharded_federation(scale, seed=SEED, shard_count=4,
                                       replication_factor=2, node_count=4)
    FleetMonitor().attach(cluster)
    MembershipTracker().attach(cluster)
    RepairEngine().attach(cluster)
    return Rebalancer().attach(cluster)


def _run_drill():
    """Skew → split → move → drain, returning (stats, shard counts,
    post-drill scan item count)."""
    rebalancer = _build_cluster(DRILL_SCALE)
    cluster = rebalancer.federation
    scan_oracle = _oracle(DRILL_SCALE, SHARDED_SCAN_QUERY)

    def answer(query: str) -> str:
        result = cluster.run(query, at="local",
                             strategy=Strategy.BY_PROJECTION)
        return serialize_sequence(result.items)

    rebalancer.plan()   # drain the warmup heat window
    for _ in range(12):
        answer(SHARDED_HOT_QUERY)
    plans = rebalancer.plan()
    splits = [p for p in plans if isinstance(p, SplitPlan)]
    assert splits, f"hot skew planned no split: {plans}"
    for plan in splits:
        assert rebalancer.executor.execute(plan)
    shard_count = len(cluster.catalog.get("people-c").shards)

    shard = cluster.catalog.get("people-c").shards[0]
    assert rebalancer.move("people-c", shard.index, shard.replicas[0])
    assert rebalancer.drain("node4")
    collected = rebalancer.collect()
    assert answer(SHARDED_SCAN_QUERY) == scan_oracle

    result = cluster.run(SHARDED_SCAN_QUERY, at="local",
                         strategy=Strategy.BY_PROJECTION)
    return rebalancer.stats(), shard_count, collected, len(result.items)


def _run_chaos_soak():
    queries = [(query, _oracle(CHAOS_SCALE, query))
               for query in (SHARDED_SCAN_QUERY, COUNT_QUERY)]
    rebalancer = _build_cluster(CHAOS_SCALE)
    cluster = rebalancer.federation
    schedule = ChaosSchedule.generate(random.Random(SEED), NODES,
                                      steps=CHAOS_STEPS, splits=2,
                                      moves=3, drains=1)
    harness = ChaosHarness(cluster, schedule, queries=queries,
                           strategy=Strategy.BY_PROJECTION)
    report = harness.run()
    result = cluster.run(SHARDED_SCAN_QUERY, at="local",
                         strategy=Strategy.BY_PROJECTION)
    assert serialize_sequence(result.items) == queries[0][1]
    return report, schedule, len(result.items)


def _drill_row():
    stats, shard_count, collected, result_items = _run_drill()
    row = {
        "experiment": "rebalance_drill",
        "result_items": result_items,
        "people_shards": shard_count,
        "splits": stats["splits"],
        "moves": stats["moves"],
        "retires": stats["retires"],
        "migrations_failed": stats["migrations_failed"],
        "fragments_collected": collected,
    }
    print_table(
        f"Rebalance drill: split + move + drain, seed {SEED}",
        ["shards", "splits", "moves", "retires", "failed", "collected"],
        [[row["people_shards"], row["splits"], row["moves"],
          row["retires"], row["migrations_failed"],
          row["fragments_collected"]]])

    assert stats["migrations_failed"] == 0
    assert stats["splits"] >= 1
    assert stats["moves"] >= 1
    # At exactly target replication a drain migrates rather than
    # retires, so `retires` stays 0 here; superseded copies are
    # reclaimed lazily instead.
    assert collected >= 1
    return row


def _soak_row():
    report, schedule, result_items = _run_chaos_soak()
    row = {
        "experiment": "chaos_reshard_soak",
        "steps": report.steps,
        "fault_events": len(schedule.events),
        "queries": report.queries,
        "result_items": result_items,
        "wrong_answers": report.wrong_answers,
        "failovers": report.failovers,
        "evictions": report.evictions,
        "repairs_completed": report.repairs_completed,
        "splits": report.splits,
        "moves": report.moves,
        "drains": report.drains,
        "retires": report.retires,
        "migrations_failed": report.migrations_failed,
        "fragments_collected": report.fragments_collected,
        "steady_failovers": report.steady_failovers,
        "p50_ms": round(report.p50_ms, 3),
        "p95_ms": round(report.p95_ms, 3),
        "p99_ms": round(report.p99_ms, 3),
    }
    print_table(
        f"Chaos+reshard soak: {CHAOS_STEPS} steps, "
        f"{len(schedule.events)} events, seed {SEED}",
        ["queries", "wrong", "splits", "moves", "drains", "failed mig",
         "steady fo"],
        [[row["queries"], row["wrong_answers"], row["splits"],
          row["moves"], row["drains"], row["migrations_failed"],
          row["steady_failovers"]]])

    assert report.wrong_answers == 0, report.wrong_steps
    assert report.converged, "cluster never converged after the schedule"
    assert report.steady_failovers == 0
    assert report.migrations_failed == 0
    assert report.splits >= 1 and report.moves >= 1
    assert report.drains >= 1
    return row


def test_rebalance_drill_and_soak():
    """Both drills, asserted and persisted as one JSON artifact (a
    pure function of the seed, so repeated runs diff clean)."""
    rows = [_drill_row(), _soak_row()]
    write_json("rebalance", rows, seed=SEED, drill_scale=DRILL_SCALE,
               chaos_scale=CHAOS_SCALE, chaos_steps=CHAOS_STEPS)


def test_reshard_replay_is_deterministic():
    """Same seed ⇒ identical schedule and identical migration counts —
    what makes a CI resharding failure debuggable."""
    first, first_schedule, first_items = _run_chaos_soak()
    second, second_schedule, second_items = _run_chaos_soak()
    assert first_schedule == second_schedule
    assert first_items == second_items
    for field in ("queries", "wrong_answers", "failovers", "evictions",
                  "repairs_completed", "splits", "moves", "drains",
                  "retires", "migrations_failed", "fragments_collected",
                  "steady_failovers", "converged"):
        assert getattr(first, field) == getattr(second, field), field


def test_rebalance_timing(benchmark):
    def run() -> None:
        stats, _shards, _collected, _items = _run_drill()
        assert stats["migrations_failed"] == 0

    benchmark(run)
