"""CI soak smoke: a replica degrades, dies, and recovers mid-workload.

Drives the churn drill end to end against the sharded XMark cluster
with the fleet monitor attached: a healthy warmup, a degrade phase
(catalog marks steer two shards exclusively onto a slowed replica, so
health scoring must demote it while the failover count stays zero and
the SLO burn-rate alert fires exactly once), then a hard kill/revive
of a healthy replica (failovers must register) — with zero wrong
answers throughout. Writes the event JSONL and the collapsed-stack
profile into the output directory so CI uploads them as artifacts,
and prints the live fleet console at the end.

Usage::

    PYTHONPATH=src python benchmarks/soak_smoke.py [out_dir]

Exit code 0 = clean, 1 = any invariant violated. ``out_dir`` defaults
to ``$BENCH_OUT_DIR`` or ``bench-results``.
"""

from __future__ import annotations

import os
import sys
from pathlib import Path

from repro.decompose import Strategy
from repro.obs import SLO, BurnRatePolicy, FleetMonitor, render_fleet
from repro.runtime import FederationEngine
from repro.workloads import SHARDED_SCAN_QUERY, build_sharded_federation
from repro.xquery.xdm import serialize_sequence

SCALE = float(os.environ.get("REPRO_SOAK_SMOKE_SCALE", "0.002"))

#: Injected latency far above the testbed's sub-ms baseline, and a
#: slow-query threshold between the two, so degraded-peer queries (and
#: only those) breach the latency SLO.
DEGRADE_S = 0.080
SLOW_S = 0.030


def run_batch(engine, n: int) -> set[str]:
    """n queries, returning the de-duplicated set of answers."""
    futures = [engine.submit(SHARDED_SCAN_QUERY, at="local",
                             strategy=Strategy.BY_PROJECTION)
               for _ in range(n)]
    return {serialize_sequence(f.result().items) for f in futures}


def main(out_dir: str | None = None) -> int:
    out = Path(out_dir or os.environ.get("BENCH_OUT_DIR", "bench-results"))
    out.mkdir(parents=True, exist_ok=True)

    cluster = build_sharded_federation(SCALE)
    monitor = FleetMonitor(slow_query_s=SLOW_S,
                           profile_every=4).attach(cluster)
    monitor.add_slo(
        SLO(name="latency", target=0.9, threshold_s=SLOW_S),
        BurnRatePolicy(long_s=60.0, short_s=1.0, threshold=2.0,
                       resolve_ratio=0.5, min_requests=5))

    baseline = serialize_sequence(
        cluster.run(SHARDED_SCAN_QUERY, at="local",
                    strategy=Strategy.BY_PROJECTION).items)
    problems: list[str] = []

    def check(ok: bool, what: str) -> None:
        if not ok:
            problems.append(what)

    # Cache hits bypass the wire (feeding ~0 ms health samples) and
    # batching adds timing noise: both off keeps the degraded peer's
    # latency signal clean.
    with FederationEngine(cluster, max_workers=2, cache=False,
                          batch_window_s=0.0) as engine:
        # Phase 1 — healthy warmup.
        check(run_batch(engine, 8) == {baseline}, "warmup answers wrong")
        check(engine.metrics.summary()["failovers"] == 0,
              "failovers during healthy warmup")
        print("phase 1 (warmup): 8 queries, answers correct")

        # Phase 2 — node2 degrades (slow, NOT dead). Catalog marks
        # steer shards 0/1 onto it exclusively: the breach is
        # sustained, nothing raises, so only health scoring can catch
        # it — and it must, before any request fails.
        cluster.catalog.mark_down("node1")
        cluster.catalog.mark_down("node3")
        cluster.transport.degrade_peer("node2", DEGRADE_S)
        check(run_batch(engine, 6) == {baseline},
              "degrade-phase answers wrong")
        demoted = {event.attrs["peer"]
                   for event in monitor.events.recent(kind="health_demoted")}
        check("node2" in demoted,
              f"degraded replica never demoted (demoted={sorted(demoted)})")
        check(engine.metrics.summary()["failovers"] == 0,
              "failover count grew before health demotion could act")
        check(monitor.events.count("alert_fired") == 1,
              f"alert fired {monitor.events.count('alert_fired')}x, "
              "want exactly 1")
        print("phase 2 (degrade): node2 demoted "
              f"(score {monitor.health.health('node2').score:.2f}), "
              "burn-rate alert fired once, zero failovers")

        # Phase 3 — hard churn: heal the marks, restore node2, kill a
        # healthy first-choice replica outright, then revive it.
        cluster.catalog.mark_up("node1")
        cluster.catalog.mark_up("node3")
        cluster.transport.restore_peer("node2")
        cluster.transport.kill_peer("node1")
        check(run_batch(engine, 8) == {baseline},
              "kill-phase answers wrong")
        check(engine.metrics.summary()["failovers"] >= 1,
              "dead replica registered no failovers")
        cluster.transport.revive_peer("node1")
        check(run_batch(engine, 4) == {baseline},
              "recovery-phase answers wrong")
        check(engine.metrics.summary()["failed"] == 0,
              "queries failed during the soak")
        print("phase 3 (kill/revive): "
              f"{engine.metrics.summary()['failovers']} failovers, "
              "answers correct throughout")

    check(monitor.events.count("alert_fired") == 1,
          "burn-rate alert flapped")
    check(monitor.profiler.samples >= 1, "profiler sampled no traces")

    events_path = out / "EVENTS_soak.jsonl"
    written = monitor.events.export_jsonl(events_path)
    profile_path = out / "PROFILE_soak.folded"
    lines = monitor.profiler.write_folded(profile_path, "sim")
    print(f"\n{written} events -> {events_path}")
    print(f"{lines} folded stacks ({monitor.profiler.samples} samples) "
          f"-> {profile_path}")

    print("\n" + render_fleet(monitor))
    if problems:
        print("FAIL:")
        for problem in problems:
            print(f"  - {problem}")
        return 1
    print("soak smoke: churn drill invariants hold")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1] if len(sys.argv) > 1 else None))
