"""Chaos soak benchmark: the self-healing cluster under a seeded
kill/revive/degrade schedule.

Not a paper figure — this drills the robustness layer end to end: a
:class:`~repro.cluster.chaos.ChaosSchedule` generated from a fixed
seed is interleaved with a live workload against the sharded XMark
testbed, with the failure detector ticking every step and the repair
engine re-replicating after each eviction. Every answer is checked
byte-exact against a **single-owner oracle** (the same documents on
one unsharded peer — the strongest scatter-gather correctness check
available), and after the schedule the harness drives the cluster to
convergence and asserts the healed fleet fails over on nothing.

Emitted to ``BENCH_chaos.json``: the deterministic outcome counts
(``result_items`` is baseline-enforced exactly; the chaos schedule,
detector, and repair path are all seeded, so answer drift means a real
correctness bug) plus informational latency percentiles over the live
workload.
"""

import random

from repro.cluster.chaos import ChaosHarness, ChaosSchedule
from repro.cluster.membership import MembershipTracker
from repro.cluster.repair import RepairEngine
from repro.decompose import Strategy
from repro.obs import FleetMonitor
from repro.workloads import (
    SHARDED_SCAN_QUERY, build_federation, build_sharded_federation,
)
from repro.xquery.xdm import serialize_sequence

from benchmarks.conftest import print_table, write_json

SEED = 20090329
SCALE = 0.002
STEPS = 36
NODES = ["node1", "node2", "node3", "node4"]

COUNT_QUERY = ('count(doc("xrpc://people-c/people.xml")'
               "/child::site/child::people/child::person)")


def _oracle_answers() -> list[tuple[str, str]]:
    """(sharded query, expected serialization) via a single-owner
    federation over the same generated documents."""
    single = build_federation(SCALE, seed=SEED)

    def expected(query: str) -> str:
        rehosted = query.replace("xrpc://people-c", "xrpc://peer1")
        result = single.run(rehosted, at="local",
                            strategy=Strategy.BY_PROJECTION)
        return serialize_sequence(result.items)

    return [(query, expected(query))
            for query in (SHARDED_SCAN_QUERY, COUNT_QUERY)]


def _build_cluster():
    cluster = build_sharded_federation(SCALE, seed=SEED, shard_count=4,
                                       replication_factor=2, node_count=4)
    FleetMonitor().attach(cluster)
    MembershipTracker().attach(cluster)
    RepairEngine().attach(cluster)
    return cluster


def _run_soak():
    queries = _oracle_answers()
    cluster = _build_cluster()
    schedule = ChaosSchedule.generate(random.Random(SEED), NODES,
                                      steps=STEPS)
    harness = ChaosHarness(cluster, schedule, queries=queries,
                           strategy=Strategy.BY_PROJECTION)
    report = harness.run()
    # One healthy post-convergence scan pins the deterministic answer
    # size for the regression baseline.
    result = cluster.run(SHARDED_SCAN_QUERY, at="local",
                         strategy=Strategy.BY_PROJECTION)
    assert serialize_sequence(result.items) == queries[0][1]
    return report, schedule, len(result.items)


def test_chaos_soak():
    report, schedule, result_items = _run_soak()
    row = {
        "experiment": "chaos_soak",
        "steps": report.steps,
        "fault_events": len(schedule.events),
        "queries": report.queries,
        "result_items": result_items,
        "wrong_answers": report.wrong_answers,
        "failovers": report.failovers,
        "retries": report.retries,
        "partial_shards": report.partial_shards,
        "evictions": report.evictions,
        "repairs_completed": report.repairs_completed,
        "repairs_failed": report.repairs_failed,
        "steady_failovers": report.steady_failovers,
        "convergence_ticks": report.convergence_ticks,
        "p50_ms": round(report.p50_ms, 3),
        "p95_ms": round(report.p95_ms, 3),
        "p99_ms": round(report.p99_ms, 3),
    }
    print_table(
        f"Chaos soak: {STEPS} steps, {len(schedule.events)} fault "
        f"events, seed {SEED}",
        ["queries", "wrong", "failovers", "evictions", "repairs",
         "steady fo", "p99 ms"],
        [[row["queries"], row["wrong_answers"], row["failovers"],
          row["evictions"], row["repairs_completed"],
          row["steady_failovers"], f"{row['p99_ms']:.1f}"]])
    write_json("chaos", [row], seed=SEED, scale=SCALE, steps=STEPS,
               schedule=schedule.describe())

    assert report.wrong_answers == 0, report.wrong_steps
    assert report.converged, "cluster never converged after the schedule"
    assert report.steady_failovers == 0, (
        f"{report.steady_failovers} failovers after convergence — the "
        "healed cluster should route around nothing")
    assert report.repairs_failed == 0
    assert report.evictions >= 1, "schedule produced no eviction"
    assert report.repairs_completed >= 1, "evictions but no repairs"


def test_chaos_replay_is_deterministic():
    """Same seed ⇒ bit-identical schedule and identical outcome
    counts — the property that makes a CI chaos failure debuggable."""
    first, first_schedule, _ = _run_soak()
    second, second_schedule, _ = _run_soak()
    assert first_schedule == second_schedule
    for field in ("queries", "wrong_answers", "failovers", "retries",
                  "partial_shards", "evictions", "rejoins",
                  "repairs_completed", "repairs_failed",
                  "steady_failovers", "converged"):
        assert getattr(first, field) == getattr(second, field), field


def test_chaos_timing(benchmark):
    queries = _oracle_answers()

    def run() -> None:
        cluster = _build_cluster()
        schedule = ChaosSchedule.generate(random.Random(SEED), NODES,
                                          steps=12)
        report = ChaosHarness(cluster, schedule, queries=queries,
                              strategy=Strategy.BY_PROJECTION).run()
        assert report.wrong_answers == 0

    benchmark(run)
