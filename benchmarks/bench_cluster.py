"""Cluster scatter-gather: shard-count scaling and replica failover.

Not a paper figure — this benchmarks the ``repro.cluster`` subsystem:
tenant workloads aimed at sharded XMark collections
(``xrpc://people-c/...`` / ``xrpc://auctions-c/...``), executed by
:class:`FederationEngine` over a :class:`SimulatedTransport` whose
latency costs real wall-clock time.

Two experiments:

* **shard sweep** — the read-heavy tenant scan (tiny fixed request,
  member-proportional response) over 1, 2 and 4 shards, on a
  bandwidth-constrained wire (the paper's 1 Gb/s LAN never saturates
  on laptop-scale documents, so the sweep models a 1 MB/s link where
  bytes-per-peer is the scarce resource — exactly what sharding
  divides). Per-peer concurrency is gated at 2, so the single-owner
  cell queues on its one data node while the 4-shard fleet spreads the
  same bytes over 4 nodes: queries/sec grows with shard count.
  The result cache is off in this sweep — repeated thresholds would
  otherwise serve from memory and mask the wire effect being measured.
* **failover drill** — the full semijoin tenant mix (both collections)
  with one data node killed mid-fleet; every query must still complete
  (served by the surviving replicas) and the failovers must be visible
  in the fleet's ``RunStats`` aggregation.

Cells are emitted to ``BENCH_cluster.json`` via
:func:`benchmarks.conftest.write_json` for cross-PR tracking.
"""

import random

from repro.net.costmodel import CostModel
from repro.runtime import FederationEngine, SimulatedTransport
from repro.workloads import (
    build_sharded_federation, sharded_scan_jobs, sharded_tenant_jobs,
)

from benchmarks.conftest import print_table, write_json

SCALE = 0.04
SHARD_SWEEP = (1, 2, 4)
CLIENTS = 6
ROUNDS = 2
SEED = 20090329

#: The sweep's wire: 1 MB/s with 10x time magnification, so per-peer
#: bytes (what sharding divides) dominate wall-clock time.
WAN_BANDWIDTH = 1e6
TIME_SCALE = 10.0


def _sweep_cell(shard_count: int) -> dict:
    federation = build_sharded_federation(
        SCALE, seed=SEED, shard_count=shard_count,
        replication_factor=min(2, shard_count), node_count=shard_count,
        cost_model=CostModel().replace(
            bandwidth_bytes_per_s=WAN_BANDWIDTH))
    transport = SimulatedTransport(federation.cost_model,
                                   time_scale=TIME_SCALE,
                                   per_peer_concurrency=2)
    jobs = sharded_scan_jobs(clients=CLIENTS, rounds=ROUNDS,
                             rng=random.Random(SEED))
    with FederationEngine(federation, max_workers=CLIENTS,
                          transport=transport, cache=False) as engine:
        engine.run_all([(j.query, j.at, j.strategy) for j in jobs])
        return engine.metrics.summary()


def test_shard_scaling():
    rows = []
    cells = []
    qps: dict[int, float] = {}
    for shard_count in SHARD_SWEEP:
        cell = _sweep_cell(shard_count)
        qps[shard_count] = cell["throughput_qps"]
        cells.append({
            "experiment": "shard_sweep",
            "shards": shard_count,
            "throughput_qps": cell["throughput_qps"],
            "latency_p50_s": cell["latency_s"]["p50"],
            "latency_p95_s": cell["latency_s"]["p95"],
            "scatter_shards": cell["scatter_shards"],
            "transferred_bytes": cell["total_transferred_bytes"],
        })
        rows.append([
            shard_count,
            f"{cell['throughput_qps']:.1f}",
            f"{cell['latency_s']['p50'] * 1000:.0f}",
            f"{cell['latency_s']['p95'] * 1000:.0f}",
            cell["scatter_shards"],
        ])
    print_table(
        f"Cluster shard sweep: {CLIENTS * ROUNDS} tenant scans, "
        "1 MB/s wire, per-peer gate 2, replication 2",
        ["shards", "qps", "p50 ms", "p95 ms", "shard calls"], rows)
    cells.append(_failover_cell())
    write_json("cluster", cells, scale=SCALE, time_scale=TIME_SCALE,
               wan_bandwidth=WAN_BANDWIDTH, clients=CLIENTS, rounds=ROUNDS)

    assert qps[SHARD_SWEEP[-1]] > qps[SHARD_SWEEP[0]], (
        f"{SHARD_SWEEP[-1]} shards should out-run {SHARD_SWEEP[0]} shard "
        f"({qps[SHARD_SWEEP[-1]]:.1f} vs {qps[SHARD_SWEEP[0]]:.1f} qps)")


def _failover_cell() -> dict:
    federation = build_sharded_federation(
        0.005, seed=SEED, shard_count=4, replication_factor=2,
        node_count=4)
    transport = SimulatedTransport(federation.cost_model,
                                   time_scale=0.05,
                                   extra_latency_s=0.002)
    transport.kill_peer("node2")
    jobs = sharded_tenant_jobs(clients=CLIENTS, rounds=ROUNDS,
                               rng=random.Random(SEED))
    with FederationEngine(federation, max_workers=CLIENTS,
                          transport=transport) as engine:
        engine.run_all([(j.query, j.at, j.strategy) for j in jobs])
        cell = engine.metrics.summary()
    row = {
        "experiment": "failover",
        "shards": 4,
        "killed": "node2",
        "queries": cell["queries"],
        "failed": cell["failed"],
        "throughput_qps": cell["throughput_qps"],
        "failovers": cell["failovers"],
    }
    print_table(
        "Failover drill: node2 killed, semijoin mix, replication 2",
        ["queries", "failed", "qps", "failovers"],
        [[row["queries"], row["failed"],
          f"{row['throughput_qps']:.1f}", row["failovers"]]])
    return row


def test_failover_drill():
    """A killed replica's queries must complete via the survivors."""
    row = _failover_cell()
    assert row["failed"] == 0
    assert row["queries"] == CLIENTS * ROUNDS
    assert row["failovers"] > 0


def test_cluster_timing(benchmark):
    federation = build_sharded_federation(0.005, shard_count=4)
    jobs = sharded_tenant_jobs(clients=4, rounds=1,
                               rng=random.Random(SEED))

    def run() -> None:
        with FederationEngine(federation, max_workers=4) as engine:
            engine.run_all([(j.query, j.at, j.strategy) for j in jobs])

    benchmark(run)
