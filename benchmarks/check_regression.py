"""Benchmark regression guard: fresh ``BENCH_*.json`` vs. baselines.

Usage::

    python benchmarks/check_regression.py --fresh bench-results \
        [--baseline benchmarks/baselines] [--tolerance 0.4] \
        [--enforce-timings [--timing-tolerance 0.75]] [--verbose]

The committed baselines under ``benchmarks/baselines/`` pin the perf
trajectory. What is enforced is chosen for cross-machine stability:

* ``speedup`` fields (same-machine ratios, e.g. indexed vs. naive in
  ``BENCH_hotpath.json``) must stay within the tolerance band:
  ``fresh >= baseline * (1 - tolerance)``;
* ``result_items`` fields (deterministic outputs) must match exactly —
  a drift means the benchmark measures different work;
* row shape: every baseline benchmark must be present with the same
  row labels (string fields), else the baselines need refreshing.

Absolute timings (``*_ms``, ``*_s``, ``*qps*``, latency percentiles)
are machine-dependent, so they are reported but only enforced with
``--enforce-timings`` (useful locally on the machine that produced the
baselines). Exit code 0 = clean, 1 = regression, 2 = missing files.

Refresh baselines with::

    BENCH_OUT_DIR=benchmarks/baselines PYTHONPATH=src:. \
        python -m pytest benchmarks/ -q -s
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

TIMING_MARKERS = ("_ms", "_s", "qps", "latency", "time")


def classify(field: str) -> str:
    if field == "speedup":
        return "ratio"
    if field == "result_items":
        return "exact"
    if any(marker in field for marker in TIMING_MARKERS):
        return "timing"
    return "info"


def load_rows(path: Path) -> list[dict]:
    payload = json.loads(path.read_text())
    return payload.get("rows", [])


def row_label(row: dict) -> str:
    parts = [f"{key}={value}" for key, value in sorted(row.items())
             if isinstance(value, (str, bool))]
    return ", ".join(parts) or "<unlabelled>"


def compare_rows(name: str, base_row: dict, fresh_row: dict,
                 options: argparse.Namespace,
                 failures: list[str], notes: list[str]) -> None:
    label = row_label(base_row)
    if row_label(fresh_row) != label:
        failures.append(
            f"{name}: row labels diverged ({label!r} vs "
            f"{row_label(fresh_row)!r}) — refresh the baselines")
        return
    for field, base_value in base_row.items():
        if not isinstance(base_value, (int, float)) \
                or isinstance(base_value, bool):
            continue
        fresh_value = fresh_row.get(field)
        if not isinstance(fresh_value, (int, float)):
            failures.append(f"{name} [{label}] {field}: missing in fresh run")
            continue
        kind = classify(field)
        if kind == "ratio":
            floor = base_value * (1.0 - options.tolerance)
            if fresh_value < floor:
                failures.append(
                    f"{name} [{label}] {field}: {fresh_value} fell below "
                    f"{floor:.2f} (baseline {base_value}, "
                    f"tolerance {options.tolerance:.0%})")
        elif kind == "exact":
            if fresh_value != base_value:
                failures.append(
                    f"{name} [{label}] {field}: {fresh_value} != baseline "
                    f"{base_value} (deterministic field)")
        elif kind == "timing":
            worse = fresh_value > base_value * (1.0 +
                                                options.timing_tolerance)
            message = (f"{name} [{label}] {field}: {fresh_value} vs "
                       f"baseline {base_value}")
            if options.enforce_timings and worse:
                failures.append(message + " (timing band exceeded)")
            elif options.verbose:
                notes.append(message)
        elif options.verbose:
            notes.append(f"{name} [{label}] {field}: "
                         f"{base_value} -> {fresh_value} (not enforced)")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Compare fresh BENCH_*.json files against baselines.")
    parser.add_argument("--baseline", type=Path,
                        default=Path(__file__).parent / "baselines")
    parser.add_argument("--fresh", type=Path, default=Path("."))
    parser.add_argument("--tolerance", type=float, default=0.6,
                        help="allowed relative drop in ratio fields "
                             "(default 0.6 — ratios are machine-stable "
                             "but sub-millisecond cells jitter on shared "
                             "CI runners)")
    parser.add_argument("--timing-tolerance", type=float, default=0.75,
                        help="allowed relative timing growth with "
                             "--enforce-timings (default 0.75)")
    parser.add_argument("--enforce-timings", action="store_true",
                        help="fail on absolute timing drift (same-machine "
                             "comparisons only)")
    parser.add_argument("--only", action="append", default=None,
                        metavar="BENCH_x.json",
                        help="check only the named baseline file(s) "
                             "(repeatable) — for CI jobs that run a "
                             "subset of the benchmarks")
    parser.add_argument("--verbose", action="store_true")
    options = parser.parse_args(argv)

    baselines = sorted(options.baseline.glob("BENCH_*.json"))
    if options.only:
        wanted = set(options.only)
        baselines = [b for b in baselines if b.name in wanted]
        missing = wanted - {b.name for b in baselines}
        if missing:
            print(f"no baseline(s) named {sorted(missing)} under "
                  f"{options.baseline}", file=sys.stderr)
            return 2
    if not baselines:
        print(f"no baselines under {options.baseline}", file=sys.stderr)
        return 2

    failures: list[str] = []
    notes: list[str] = []
    checked = 0
    for baseline_path in baselines:
        fresh_path = options.fresh / baseline_path.name
        if not fresh_path.exists():
            print(f"missing fresh result {fresh_path}", file=sys.stderr)
            return 2
        base_rows = load_rows(baseline_path)
        fresh_rows = load_rows(fresh_path)
        name = baseline_path.stem
        if len(base_rows) != len(fresh_rows):
            failures.append(
                f"{name}: {len(fresh_rows)} rows vs baseline "
                f"{len(base_rows)} — refresh the baselines")
            continue
        for base_row, fresh_row in zip(base_rows, fresh_rows):
            compare_rows(name, base_row, fresh_row, options,
                         failures, notes)
        checked += 1

    for note in notes:
        print(f"[info] {note}")
    if failures:
        print(f"{len(failures)} benchmark regression(s):", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print(f"[check_regression] {checked} benchmark file(s) within "
          f"tolerance of {options.baseline}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
