"""CI rebalance smoke: observe skew → split → move → drain, end to end.

The elastic-operations pipeline against the sharded XMark cluster with
the full observability stack attached:

1. **warmup** — healthy fleet, answers byte-exact vs a single-owner
   oracle; the planner's heat window is drained so the skew phase
   starts clean.
2. **skew → split** — a hot-tenant point lookup hammers one person id;
   the router's value-index probes skip every other shard, so all the
   served heat lands on one shard. The rebalancer's planner must
   propose splitting exactly that shard from the heat signal alone,
   and executing the split must leave every answer byte-identical.
3. **move** — a replica of the hottest shard migrates to the coolest
   peer through the staged copy → verify → cutover protocol; the
   retired source copy survives until ``collect()`` so epoch-pinned
   readers are never torn.
4. **drain** — a peer is decommissioned: every placement it held is
   retired (where replication allows) or migrated off, until the peer
   holds nothing. Replication never dips below target on the
   remaining fleet.

Zero wrong answers throughout; zero failed migrations; the drained
peer ends empty. Event JSONL is written into the output directory for
CI artifacts.

Usage::

    PYTHONPATH=src python benchmarks/rebalance_smoke.py [out_dir]

Exit code 0 = clean, 1 = any invariant violated. ``out_dir`` defaults
to ``$BENCH_OUT_DIR`` or ``bench-results``.
"""

from __future__ import annotations

import os
import sys
from pathlib import Path

from repro.cluster.membership import MembershipTracker
from repro.cluster.rebalance import LoadScorer, Rebalancer, SplitPlan
from repro.cluster.repair import RepairEngine
from repro.decompose import Strategy
from repro.obs import FleetMonitor, render_fleet
from repro.workloads import (
    SHARDED_HOT_QUERY, SHARDED_SCAN_QUERY, build_federation,
    build_sharded_federation,
)
from repro.xquery.xdm import serialize_sequence

#: Larger than the chaos smoke's scale: the hot shard needs enough
#: members (>= 4) to be splittable at a meaningful boundary.
SCALE = float(os.environ.get("REPRO_REBALANCE_SMOKE_SCALE", "0.01"))
SEED = 20090329
HOT_BATCH = 12


def main(out_dir: str | None = None) -> int:
    out = Path(out_dir or os.environ.get("BENCH_OUT_DIR", "bench-results"))
    out.mkdir(parents=True, exist_ok=True)

    cluster = build_sharded_federation(SCALE, seed=SEED)
    monitor = FleetMonitor().attach(cluster)
    MembershipTracker().attach(cluster)
    RepairEngine(auto_repair=False).attach(cluster)
    rebalancer = Rebalancer().attach(cluster)

    single = build_federation(SCALE, seed=SEED)

    def oracle(query: str) -> str:
        rehosted = query.replace("xrpc://people-c", "xrpc://peer1")
        result = single.run(rehosted, at="local",
                            strategy=Strategy.BY_PROJECTION)
        return serialize_sequence(result.items)

    def answer(query: str) -> str:
        result = cluster.run(query, at="local",
                             strategy=Strategy.BY_PROJECTION)
        return serialize_sequence(result.items)

    scan_oracle = oracle(SHARDED_SCAN_QUERY)
    hot_oracle = oracle(SHARDED_HOT_QUERY)

    problems: list[str] = []

    def check(ok: bool, what: str) -> None:
        if not ok:
            problems.append(what)

    # Phase 1 — healthy warmup; drain the heat window so the skew
    # phase's delta is pure hot-tenant signal.
    for _ in range(4):
        check(answer(SHARDED_SCAN_QUERY) == scan_oracle,
              "warmup answers wrong")
    rebalancer.plan()
    print("phase 1 (warmup): answers match the single-owner oracle")

    # Phase 2 — hot skew: the planner must nominate the one shard the
    # heat concentrates on, and the split must not change any answer.
    shards_before = len(cluster.catalog.get("people-c").shards)
    for _ in range(HOT_BATCH):
        check(answer(SHARDED_HOT_QUERY) == hot_oracle,
              "hot-phase answers wrong")
    plans = rebalancer.plan()
    split_plans = [p for p in plans if isinstance(p, SplitPlan)
                   and p.collection == "people-c"]
    check(bool(split_plans),
          f"no split planned for the hot collection (plans: {plans})")
    for plan in split_plans:
        check(rebalancer.executor.execute(plan),
              f"planned split did not complete: {plan}")
    for plan in plans:
        if plan not in split_plans:
            # Companion moves may have gone stale behind the split's
            # shard renumbering; executing them is best-effort.
            rebalancer.executor.execute(plan)
    spec = cluster.catalog.get("people-c")
    check(len(spec.shards) == shards_before + 1,
          f"{len(spec.shards)} shards after split, "
          f"want {shards_before + 1}")
    check(answer(SHARDED_SCAN_QUERY) == scan_oracle,
          "post-split scan answers wrong")
    check(answer(SHARDED_HOT_QUERY) == hot_oracle,
          "post-split hot answers wrong")
    print(f"phase 2 (split): heat nominated the hot shard, "
          f"{shards_before} -> {len(spec.shards)} shards, answers exact")

    # Phase 3 — move one replica of the first people shard to the
    # coolest peer; the old copy must survive until collect().
    shard = cluster.catalog.get("people-c").shards[0]
    source = shard.replicas[0]
    check(rebalancer.move("people-c", shard.index, source),
          "explicit move did not complete")
    source_peer = cluster.peer(source)
    check(shard.local_name in source_peer.documents,
          "retired source copy vanished before collect()")
    collected = rebalancer.collect()
    check(collected >= 1, "collect() retired nothing after the move")
    check(shard.local_name not in source_peer.documents,
          "collect() left the retired copy in place")
    check(answer(SHARDED_SCAN_QUERY) == scan_oracle,
          "post-move answers wrong")
    print(f"phase 3 (move): s{shard.index} replica {source} -> cooler "
          f"peer, {collected} retired fragments collected")

    # Phase 4 — decommission node4: drain retires or migrates every
    # placement; replication holds on the remaining fleet throughout.
    check(rebalancer.drain("node4"), "drain(node4) stalled")
    rebalancer.collect()
    scorer = LoadScorer(cluster, catalog=cluster.catalog)
    node4 = scorer.snapshot()["node4"]
    check(node4.fragments == 0,
          f"drained peer still holds {node4.fragments} fragments")
    check(not cluster.peer("node4").documents,
          "drained peer still stores documents")
    for spec in cluster.catalog.collections():
        for shard in spec.shards:
            live = [r for r in shard.replicas if r != "node4"]
            check(len(live) >= spec.target_replication,
                  f"{spec.name}#s{shard.index} under-replicated after "
                  f"drain: {shard.replicas}")
    check(answer(SHARDED_SCAN_QUERY) == scan_oracle,
          "post-drain answers wrong")
    check(answer(SHARDED_HOT_QUERY) == hot_oracle,
          "post-drain hot answers wrong")
    print("phase 4 (drain): node4 empty, replication held, "
          "answers exact")

    stats = rebalancer.stats()
    check(stats["migrations_failed"] == 0,
          f"{stats['migrations_failed']} migrations failed")
    check(monitor.events.count("rebalance_planned") >= 1,
          "no rebalance_planned events")
    check(monitor.events.count("rebalance_retired") >= 1,
          "no rebalance_retired events")

    events_path = out / "EVENTS_rebalance.jsonl"
    written = monitor.events.export_jsonl(events_path)
    print(f"\n{written} events -> {events_path}")

    print("\n" + render_fleet(monitor))
    if problems:
        print("FAIL:")
        for problem in problems:
            print(f"  - {problem}")
        return 1
    print("rebalance smoke: observe -> split -> move -> drain holds")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1] if len(sys.argv) > 1 else None))
