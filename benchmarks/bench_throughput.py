"""Concurrent runtime throughput: concurrency × strategy sweep.

Not a paper figure — this benchmarks the `repro.runtime` subsystem the
reproduction grows beyond the paper: a multi-tenant workload (N clients
issuing benchmark-query variants over shared XMark documents) executed
by :class:`FederationEngine` over a :class:`SimulatedTransport` whose
latency costs real wall-clock time. Reported per cell: queries/sec,
p95 latency, cache hit rate, and bytes kept off the wire.

Expected shape: queries/sec grows with concurrency (per-query latency
is wire-bound and overlaps), and the result cache's saved bytes grow
with repeated thresholds across rounds.
"""

from repro.decompose import Strategy
from repro.runtime import FederationEngine, SimulatedTransport
from repro.workloads import build_federation, multi_tenant_jobs

from benchmarks.conftest import print_table, write_json

#: Wall-clock seconds per simulated network second: fast but non-zero,
#: so overlapping round trips actually pay (and hide) latency.
TIME_SCALE = 0.05
SCALE = 0.005
CONCURRENCY_SWEEP = (1, 2, 4, 8)


def _run_cell(concurrency: int, strategy: Strategy,
              clients: int = 8, rounds: int = 2) -> dict:
    federation = build_federation(SCALE)
    # Latency high enough that the workload is wire-bound: concurrency
    # then wins by overlapping waits, keeping the sweep's ordering
    # stable even on noisy CI machines.
    transport = SimulatedTransport(federation.cost_model,
                                   time_scale=TIME_SCALE,
                                   extra_latency_s=0.004)
    jobs = multi_tenant_jobs(clients=clients, rounds=rounds,
                             strategy=strategy)
    with FederationEngine(federation, max_workers=concurrency,
                          transport=transport) as engine:
        engine.run_all([(j.query, j.at, j.strategy) for j in jobs])
        summary = engine.metrics.summary()
        summary["cache_hit_rate"] = engine.cache.stats.hit_rate
        summary["batching"] = engine.batcher.snapshot()
    return summary


def test_throughput_sweep():
    strategies = (Strategy.BY_PROJECTION, Strategy.BY_FRAGMENT)
    rows = []
    cells = []
    qps: dict[tuple[Strategy, int], float] = {}
    for strategy in strategies:
        for concurrency in CONCURRENCY_SWEEP:
            cell = _run_cell(concurrency, strategy)
            qps[(strategy, concurrency)] = cell["throughput_qps"]
            cells.append({
                "strategy": strategy.value,
                "concurrency": concurrency,
                "throughput_qps": cell["throughput_qps"],
                "latency_p95_s": cell["latency_s"]["p95"],
                "cache_hit_rate": cell["cache_hit_rate"],
                "cache_saved_bytes": cell["cache_saved_bytes"],
                "batch_merge_rate": cell["batching"]["merge_rate"],
            })
            rows.append([
                strategy.value, concurrency,
                f"{cell['throughput_qps']:.1f}",
                f"{cell['latency_s']['p95'] * 1000:.1f}",
                f"{cell['cache_hit_rate'] * 100:.0f}%",
                f"{cell['cache_saved_bytes'] / 1024:.1f}",
                f"{cell['batching']['merge_rate'] * 100:.0f}%",
            ])
    print_table(
        "Runtime throughput: 16 tenant queries, SimulatedTransport",
        ["strategy", "conc", "qps", "p95 ms", "cache hit",
         "saved KB", "merged"], rows)
    write_json("throughput", cells, scale=SCALE, time_scale=TIME_SCALE)

    for strategy in strategies:
        assert qps[(strategy, 8)] > qps[(strategy, 1)], (
            f"{strategy.value}: concurrency 8 should out-run 1 "
            f"({qps[(strategy, 8)]:.1f} vs {qps[(strategy, 1)]:.1f} qps)")


def test_cache_bandwidth_savings():
    """Repeated tenant queries must be served (partly) from the cache."""
    cell = _run_cell(concurrency=8, strategy=Strategy.BY_PROJECTION,
                     clients=8, rounds=2)
    assert cell["cache_hits"] > 0
    assert cell["cache_hit_rate"] > 0.0
    assert cell["cache_saved_bytes"] > 0


def test_throughput_timing(benchmark):
    federation = build_federation(SCALE)
    jobs = multi_tenant_jobs(clients=4, rounds=1)

    def run() -> None:
        with FederationEngine(federation, max_workers=4) as engine:
            engine.run_all([(j.query, j.at, j.strategy) for j in jobs])

    benchmark(run)
