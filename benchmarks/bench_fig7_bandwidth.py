"""Figure 7 — Bandwidth usage.

Paper: total transferred data (documents + SOAP messages) per query,
log-scale, for total document sizes 20-320 MB. Expected shape:
data-shipping highest, by-value slightly below it, by-fragment well
below, by-projection lowest; all linear in document size.
"""

from repro.decompose import Strategy
from repro.workloads import build_federation, run_strategy

from benchmarks.conftest import SCALES, STRATEGY_ORDER, print_table


def test_fig7_series(sweep):
    rows = []
    for runs in sweep.values():
        docs = runs[Strategy.DATA_SHIPPING].total_document_bytes
        row = [f"{docs/1024:.0f} KB"]
        row.extend(f"{runs[s].stats.total_transferred_bytes/1024:.1f}"
                   for s in STRATEGY_ORDER)
        rows.append(row)
    print_table(
        "Figure 7: total transferred data per query (KB)",
        ["docs total"] + [s.value for s in STRATEGY_ORDER], rows)

    # Assert the paper's ordering at every size.
    for runs in sweep.values():
        series = [runs[s].stats.total_transferred_bytes
                  for s in STRATEGY_ORDER]
        assert series[0] > series[1] > series[2] > series[3]


def test_fig7_scaling(sweep):
    """Transfer grows monotonically and at-most-linearly with document
    size for the decomposed strategies (the paper's 'good
    scalability'; at laptop scale the fixed SOAP envelope makes
    projection grow *sub*-linearly, which is the favourable
    direction)."""
    for strategy in (Strategy.BY_FRAGMENT, Strategy.BY_PROJECTION):
        series = [sweep[scale][strategy].stats.total_transferred_bytes
                  for scale in SCALES]
        # Monotone growth up to 5% selectivity noise at tiny scales.
        assert all(b >= 0.95 * a for a, b in zip(series, series[1:]))
        size_ratio = SCALES[-1] / SCALES[0]
        assert series[-1] / series[0] < 1.5 * size_ratio


def test_fig7_timing(benchmark):
    federation = build_federation(SCALES[0])
    benchmark(lambda: run_strategy(federation, Strategy.BY_PROJECTION))
