"""Figure 10 — Runtime vs compile-time projection precision.

Paper: size of the projected document over increasing XMark sizes.
Compile-time projection (Marian & Siméon) keeps every person with its
age; runtime projection starts from the *filtered* person sequence
(age < 40 here, age > 45 in the paper), so its projected documents are
~5x smaller.
"""


import pytest

from repro.paths.relpath import parse_rel_path
from repro.xmark import XMarkConfig, generate_people
from repro.xmldb.projection import project
from repro.xmldb.serializer import serialize_node
from repro.xquery.context import DynamicContext
from repro.xquery.evaluator import Evaluator
from repro.xquery.parser import parse_query

from benchmarks.conftest import print_table

SCALES = (0.0025, 0.005, 0.01, 0.02)

#: The projection paths of the benchmark's parameter: the person
#: anchors plus their id attribute values.
USED_PATHS = [parse_rel_path("attribute::id")]


def _persons(doc, query_text):
    module = parse_query(query_text)
    env = DynamicContext(resolve_doc=lambda uri: doc)
    return Evaluator(module).evaluate(module.body, env)


def runtime_projection(doc):
    """Project from the runtime-filtered person sequence."""
    persons = _persons(doc, 'doc("u")//person[age < 40]')
    used = list(persons)
    for path in USED_PATHS:
        used.extend(path.evaluate(persons))
    return project(used, [])


def compile_time_projection(doc):
    """Project from the compile-time over-estimate: every person (the
    path analysis cannot see the predicate's selectivity)."""
    persons = _persons(doc, 'doc("u")//person')
    used = list(persons)
    for path in USED_PATHS:
        used.extend(path.evaluate(persons))
    # Compile-time loading also keeps the age elements it tested.
    used.extend(parse_rel_path("child::age").evaluate(persons))
    used.extend(
        parse_rel_path("child::age/descendant::text()").evaluate(persons))
    return project(used, [])


@pytest.fixture(scope="module")
def documents():
    return {scale: generate_people(XMarkConfig(scale=scale))
            for scale in SCALES}


def test_fig10_series(documents):
    rows = []
    for scale, doc in documents.items():
        compile_size = len(serialize_node(
            compile_time_projection(doc).doc.root))
        runtime_size = len(serialize_node(
            runtime_projection(doc).doc.root))
        rows.append([f"{scale}", f"{compile_size/1024:.1f}",
                     f"{runtime_size/1024:.1f}",
                     f"{compile_size/runtime_size:.1f}x"])
    print_table("Figure 10: projected document size (KB)",
                ["scale", "compile-time", "runtime", "precision"], rows)

    for doc in documents.values():
        compile_size = len(serialize_node(
            compile_time_projection(doc).doc.root))
        runtime_size = len(serialize_node(
            runtime_projection(doc).doc.root))
        # The paper reports ~5x; require a clear multiple.
        assert compile_size > 1.5 * runtime_size


def test_fig10_projection_is_subset(documents):
    doc = documents[SCALES[0]]
    assert runtime_projection(doc).kept < \
        compile_time_projection(doc).kept < len(doc)


def test_fig10_timing(benchmark, documents):
    doc = documents[SCALES[0]]
    benchmark(lambda: runtime_projection(doc))
