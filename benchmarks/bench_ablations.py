"""Ablation benchmarks for the design choices DESIGN.md calls out:
Bulk RPC, distributed code motion, let-sinking normalisation, and the
pre/size/level encoding."""

import random
import time

from repro.decompose import Strategy
from repro.system.federation import Federation
from repro.workloads import BENCHMARK_QUERY, build_federation
from repro.xmark import XMarkConfig, generate_people

from benchmarks.conftest import print_table

SCALE = 0.01


class TestBulkRpc:
    """One message per loop-nested call site vs one per iteration."""

    QUERY = (
        "declare function probe($i as xs:integer) as xs:integer "
        "{ $i * 2 };\n"
        "for $i in (1 to 20) return "
        'execute at {"peer1"} { probe($i) }')

    def _federation(self):
        fed = Federation()
        fed.add_peer("peer1")
        fed.add_peer("local")
        return fed

    def test_ablation_bulk_rpc(self):
        fed = self._federation()
        bulk = fed.run(self.QUERY, at="local",
                       strategy=Strategy.BY_FRAGMENT, bulk_rpc=True)
        single = fed.run(self.QUERY, at="local",
                         strategy=Strategy.BY_FRAGMENT, bulk_rpc=False)
        print_table("Ablation: Bulk RPC (20-iteration loop)",
                    ["variant", "messages", "network ms"],
                    [["bulk", bulk.stats.messages,
                      f"{bulk.stats.times.network*1000:.2f}"],
                     ["per-call", single.stats.messages,
                      f"{single.stats.times.network*1000:.2f}"]])
        assert bulk.stats.messages == 2
        assert single.stats.messages == 40
        assert bulk.stats.times.network < single.stats.times.network

    def test_ablation_bulk_rpc_timing(self, benchmark):
        fed = self._federation()
        benchmark(lambda: fed.run(self.QUERY, at="local",
                                  strategy=Strategy.BY_FRAGMENT))


class TestCodeMotion:
    """Shipping $t/attribute::id strings instead of person subtrees."""

    def test_ablation_code_motion(self):
        fed = build_federation(SCALE)
        with_motion = fed.run(BENCHMARK_QUERY, at="local",
                              strategy=Strategy.BY_FRAGMENT,
                              code_motion=True)
        without = fed.run(BENCHMARK_QUERY, at="local",
                          strategy=Strategy.BY_FRAGMENT,
                          code_motion=False)
        print_table(
            "Ablation: distributed code motion (message bytes)",
            ["variant", "message bytes"],
            [["with motion", with_motion.stats.message_bytes],
             ["without", without.stats.message_bytes]])
        assert with_motion.stats.message_bytes < \
            without.stats.message_bytes


class TestLetSinking:
    """Without normalisation, varref edges block decomposition of the
    peer2 side (Section IV's point about syntactic vulnerability)."""

    def test_ablation_let_sinking(self):
        # A query where the doc() is bound away from its use; the
        # local anchor pins the root so only let-sinking can connect
        # the doc() to its path via parse edges and make it shippable.
        query = ('let $c := doc("xrpc://peer2/auctions.xml") return '
                 "(count($c/child::site/child::open_auctions"
                 "/child::open_auction), "
                 'count(doc("anchor.xml")/child::m))')
        fed = build_federation(SCALE)
        fed.peer("local").store("anchor.xml", "<m><n/></m>")
        sunk = fed.run(query, at="local", strategy=Strategy.BY_FRAGMENT,
                       let_sinking=True)
        plain = fed.run(query, at="local",
                        strategy=Strategy.BY_FRAGMENT, let_sinking=False)
        print_table(
            "Ablation: let-sinking normalisation",
            ["variant", "docs shipped", "transferred bytes"],
            [["with sinking", sunk.stats.documents_shipped,
              sunk.stats.total_transferred_bytes],
             ["without", plain.stats.documents_shipped,
              plain.stats.total_transferred_bytes]])
        assert sunk.items == plain.items
        # Without sinking, the doc() reaches its path only through a
        # varref edge: nothing ships and the whole document must be
        # fetched. With sinking, the count pushes to peer2.
        assert plain.stats.documents_shipped >= 1
        assert sunk.stats.documents_shipped == 0
        assert sunk.stats.total_transferred_bytes < \
            plain.stats.total_transferred_bytes


class TestEncoding:
    """O(1) interval ancestry vs pointer-chasing parent walks."""

    def test_ablation_encoding(self):
        doc = generate_people(XMarkConfig(scale=0.01))
        rng = random.Random(7)
        pairs = [(doc.node(rng.randrange(len(doc))),
                  doc.node(rng.randrange(len(doc))))
                 for _ in range(3000)]

        start = time.perf_counter()
        interval_hits = sum(1 for a, b in pairs if a.is_ancestor_of(b))
        interval_s = time.perf_counter() - start

        def walk_ancestor(a, b):
            parent = b.parent()
            while parent is not None:
                if parent == a:
                    return True
                parent = parent.parent()
            return False

        start = time.perf_counter()
        walk_hits = sum(1 for a, b in pairs if walk_ancestor(a, b))
        walk_s = time.perf_counter() - start

        print_table(
            "Ablation: pre/size interval vs pointer-walk ancestry "
            "(3000 checks)",
            ["variant", "ms"],
            [["pre/size interval", f"{interval_s*1000:.2f}"],
             ["pointer walk", f"{walk_s*1000:.2f}"]])
        assert interval_hits == walk_hits
        assert interval_s < walk_s
