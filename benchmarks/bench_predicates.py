"""Value-index speedup: compiled predicates and hash joins vs. the
naive per-candidate evaluator.

This is the PR's acceptance benchmark: predicate-heavy and join-heavy
queries over the XMark pair must run ≥3× faster through the value
index layer (``repro.xmldb.values`` probes + the predicate compiler in
``repro.xquery.predicates`` + the FLWOR hash join) than through the
naive engine retained behind ``use_index=False`` — with identical
results, asserted before timing.

Two query families:

* **predicate-heavy** — ``[child::T op literal]`` / ``[@a = ...]`` /
  conjunction shapes on the XMark documents, where the naive engine
  re-evaluates the predicate AST once per candidate and the indexed
  engine answers one value probe per document;
* **join-heavy** — the Section VII semijoin shape and a tiny-lookup
  filter, where the naive engine re-evaluates the invariant comparison
  side per iteration (nested loop) and the indexed engine hashes it
  once.

``BENCH_predicates.json`` carries the table; the committed baseline
under ``benchmarks/baselines/`` pins the speedups (ratios are
machine-stable) and the result counts (deterministic) through
``check_regression.py``.
"""

from __future__ import annotations

import time

from repro.xmark.generator import generate_pair
from repro.xmldb.node import Node
from repro.xquery.context import DynamicContext
from repro.xquery.evaluator import Evaluator
from repro.xquery.parser import parse_query

from benchmarks.conftest import print_table, write_json

SCALE = 0.02
REPEATS = 3
ITERATIONS = 10

#: (label, query, family) — the ≥3× floor applies to every cell.
QUERIES = [
    ("age-range",
     'doc("people.xml")//person[child::age < 40]/child::name',
     "predicate"),
    ("attr-equality",
     'doc("people.xml")//person[attribute::id = "person7"]',
     "predicate"),
    ("string-equality",
     'doc("auctions.xml")//open_auction[child::type = "Featured"]'
     '/child::seller',
     "predicate"),
    ("conjunction",
     'doc("auctions.xml")//open_auction'
     '[child::privacy = "Yes" and child::type = "Dutch"]/child::current',
     "predicate"),
    ("descendant-value",
     'doc("people.xml")//person[descendant::city = "Amsterdam"]'
     '/child::name',
     "predicate"),
    ("semijoin",
     """(let $t := (let $s := doc("people.xml")
                             /child::site/child::people/child::person
                 return for $x in $s
                        return if ($x/child::age < 40) then $x else ())
      return for $e in doc("auctions.xml")/descendant::open_auction
             return if ($e/child::seller/attribute::person
                        = $t/attribute::id)
                    then $e/child::annotation else ())/child::author""",
     "join"),
    ("tiny-lookup",
     'for $p in doc("people.xml")/child::site/child::people/child::person'
     ' return if ($p/child::address/child::country = "Belgium")'
     ' then $p/child::name else ()',
     "join"),
]

MIN_SPEEDUP = 3.0


def _runner(module, docs, use_index: bool):
    evaluator = Evaluator(module, use_index=use_index)

    def run():
        env = DynamicContext(resolve_doc=docs.__getitem__)
        return evaluator.run(env)

    return run


def _best_ms(run) -> float:
    best = float("inf")
    for _ in range(REPEATS):
        started = time.perf_counter()
        for _ in range(ITERATIONS):
            run()
        best = min(best, (time.perf_counter() - started) / ITERATIONS)
    return best * 1000.0


def _result_key(items):
    return [(item.doc.uri, item.pre) if isinstance(item, Node) else item
            for item in items]


def test_predicate_speedup():
    people, auctions = generate_pair(SCALE)
    docs = {"people.xml": people, "auctions.xml": auctions}

    cells = []
    rows = []
    speedups = []
    for label, query, family in QUERIES:
        module = parse_query(query)
        indexed = _runner(module, docs, use_index=True)
        naive = _runner(module, docs, use_index=False)
        assert _result_key(indexed()) == _result_key(naive()), label
        indexed_ms = _best_ms(indexed)
        naive_ms = _best_ms(naive)
        speedup = naive_ms / indexed_ms if indexed_ms else float("inf")
        speedups.append((label, speedup))
        cells.append({
            "query": label,
            "family": family,
            "naive_ms": round(naive_ms, 3),
            "indexed_ms": round(indexed_ms, 3),
            "speedup": round(speedup, 1),
            "result_items": len(indexed()),
        })
        rows.append([label, family, f"{naive_ms:.2f}",
                     f"{indexed_ms:.2f}", f"x{speedup:.1f}"])

    print_table(
        f"Predicates & joins: naive vs indexed (XMark scale {SCALE})",
        ["query", "family", "naive ms", "indexed ms", "speedup"], rows)
    write_json("predicates", cells, scale=SCALE, iterations=ITERATIONS,
               min_speedup=MIN_SPEEDUP)

    worst_label, worst = min(speedups, key=lambda pair: pair[1])
    assert worst >= MIN_SPEEDUP, (
        f"{worst_label} speedup fell to x{worst:.1f} "
        f"(floor x{MIN_SPEEDUP})")
