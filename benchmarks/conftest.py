"""Shared benchmark helpers.

Each ``bench_fig*.py`` regenerates one figure of the paper's Section
VII: it prints the same series the figure plots (so the shape can be
compared directly) and registers one representative timing with
pytest-benchmark.

Scales are laptop-sized; the paper's 10-160 MB documents map onto the
same x2 geometric sweep at ~40-700 KB. Only relative behaviour is
meaningful (see DESIGN.md).
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest

from repro.decompose import Strategy
from repro.workloads import run_all_strategies

#: The x2 geometric sweep mirroring XMark factors 0.1 .. 1.6.
SCALES = (0.0025, 0.005, 0.01, 0.02, 0.04)

STRATEGY_ORDER = (Strategy.DATA_SHIPPING, Strategy.BY_VALUE,
                  Strategy.BY_FRAGMENT, Strategy.BY_PROJECTION)


@pytest.fixture(scope="session")
def sweep():
    """All four strategies over the full scale sweep (computed once)."""
    return {scale: run_all_strategies(scale) for scale in SCALES}


def write_json(name: str, rows: list[dict], **meta) -> Path:
    """Persist one benchmark's cells as ``BENCH_{name}.json`` so the
    perf trajectory is machine-readable across PRs (CI uploads the
    files as artifacts).

    ``rows`` is one dict per benchmark cell; ``meta`` adds run-level
    context (scale, sweep parameters). The output directory defaults
    to the working directory and is overridable via ``BENCH_OUT_DIR``.
    No timestamps: the file is a pure function of the run, so repeated
    runs of a deterministic benchmark diff clean.
    """
    out_dir = Path(os.environ.get("BENCH_OUT_DIR", "."))
    out_dir.mkdir(parents=True, exist_ok=True)
    path = out_dir / f"BENCH_{name}.json"
    payload = {"benchmark": name, **meta, "rows": rows}
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"\n[bench] wrote {path}")
    return path


def print_table(title: str, header: list[str], rows: list[list[str]]) -> None:
    widths = [max(len(str(row[i])) for row in [header] + rows)
              for i in range(len(header))]
    print(f"\n=== {title} ===")
    print("  ".join(str(h).rjust(w) for h, w in zip(header, widths)))
    for row in rows:
        print("  ".join(str(c).rjust(w) for c, w in zip(row, widths)))
